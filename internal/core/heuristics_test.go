package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestExample6SelectStarNotCovered reproduces the paper's Example 6
// (Heuristic 2): Q4 selects every column of customer⋈orders, so
// materializing and reading the covering result costs more than computing
// the join from scratch — the consumer is discarded and, with only one
// consumer left, no candidate survives.
func TestExample6SelectStarNotCovered(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, `
select * from customer, orders where c_custkey = o_custkey;
select c_name, c_nationkey, o_totalprice from customer, orders where c_custkey = o_custkey;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.UsedCSEs) != 0 {
		t.Errorf("no CSE should be used when one consumer needs all columns; used %v (labels %v)",
			out.Stats.UsedCSEs, out.Stats.CandidateLabels)
	}
	if out.Stats.FinalCost != out.Stats.BaseCost {
		t.Errorf("plan changed: %.2f vs %.2f", out.Stats.FinalCost, out.Stats.BaseCost)
	}
}

// TestExample5CheapJoinPruned reproduces Example 5 (Heuristic 1): a cheap
// shared join between two otherwise-expensive queries is not worth a
// candidate. Here two queries share only the small nation⋈region join while
// their real cost lives in separate big joins.
func TestExample5CheapJoinPruned(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, `
select n_name, sum(l_extendedprice) as s
from nation, region, customer, orders, lineitem
where n_regionkey = r_regionkey and c_nationkey = n_nationkey
  and c_custkey = o_custkey and o_orderkey = l_orderkey and r_regionkey < 3
group by n_name;
select r_name, sum(ps_supplycost) as s
from nation, region, supplier, partsupp
where n_regionkey = r_regionkey and s_nationkey = n_nationkey
  and ps_suppkey = s_suppkey and r_regionkey < 4
group by r_name;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range out.Stats.CandidateLabels {
		if strings.Contains(l, "(nation ⋈ region)") {
			t.Errorf("the cheap nation⋈region join should be pruned by Heuristic 1: %s", l)
		}
	}
}

// TestExample9Containment reproduces Example 9 (Heuristic 4): both the join
// customer⋈orders⋈lineitem (E1) and the aggregation on top of it (E2) are
// sharable, E1 is contained by E2, and E2's result is smaller — so E1 is
// discarded and the surviving candidate is the aggregation.
func TestExample9Containment(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Candidates != 1 {
		t.Fatalf("candidates = %d, want only the aggregation", out.Stats.Candidates)
	}
	if !strings.HasPrefix(out.Stats.CandidateLabels[0], "γ(") {
		t.Errorf("surviving candidate must be the aggregation, got %s", out.Stats.CandidateLabels[0])
	}
}

// TestStackedCSEMarked: in the Q1–Q4 batch the narrow γ(O⋈L) candidate is
// consumed by the wide candidate's expression (stacked, §5.5), so the final
// plan materializes both and the narrow spool is read by the wide plan.
func TestStackedCSEMarked(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL+`
select p_type, sum(p_availqty) as qty
from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by p_type;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.UsedCSEs) != 2 {
		t.Fatalf("stacked plan must use both candidates, used %v", out.Stats.UsedCSEs)
	}
	// One of the chosen CSE plans must read the other's spool.
	stacked := false
	for id, cse := range out.Result.CSEs {
		used := map[int]bool{}
		cse.Plan.UsedSpoolIDs(used)
		for other := range used {
			if other != id {
				stacked = true
			}
		}
	}
	if !stacked {
		t.Error("no CSE plan reads another CSE's spool — stacking lost")
	}
}

// TestDisableStackedCSE: turning §5.5 off still produces a valid plan, just
// without cross-candidate spool reads.
func TestDisableStackedCSE(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	s := core.DefaultSettings()
	s.StackedCSE = false
	out, err := core.Optimize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.FinalCost >= out.Stats.BaseCost {
		t.Error("CSE sharing must still win without stacking")
	}
	for id, cse := range out.Result.CSEs {
		used := map[int]bool{}
		cse.Plan.UsedSpoolIDs(used)
		for other := range used {
			if other != id {
				t.Error("stacking disabled but a CSE reads another's spool")
			}
		}
	}
}

// TestExample7IndexedConsumerNotMerged reproduces the paper's Example 7
// (Heuristic 3): Q6 selects a single order date served by an index and is
// extremely cheap; Q7 needs everything after that date. Computing Q6 from a
// merged covering result would mean scanning the whole spool, so the
// Δ-benefit of merging is negative and no shared candidate is used.
func TestExample7IndexedConsumerNotMerged(t *testing.T) {
	cat := testCatalog(t, 0.02)
	m := buildMemo(t, cat, `
select o_orderkey, sum(l_extendedprice) as v
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate = '1995-01-01'
group by o_orderkey;
select o_orderkey, sum(l_extendedprice) as v
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate > '1995-01-01'
group by o_orderkey;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.UsedCSEs) != 0 {
		t.Errorf("merging an indexed point lookup with a huge range should not pay off; used %v (labels %v)",
			out.Stats.UsedCSEs, out.Stats.CandidateLabels)
	}
}

// TestSimilarRangesDoMerge is the counterpoint to Example 7: when both
// consumers need similar, overlapping slices, merging pays.
func TestSimilarRangesDoMerge(t *testing.T) {
	cat := testCatalog(t, 0.02)
	m := buildMemo(t, cat, `
select o_orderkey, sum(l_extendedprice) as v
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate < '1996-07-01'
group by o_orderkey;
select o_orderkey, sum(l_quantity) as q
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate < '1996-01-01'
group by o_orderkey;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.UsedCSEs) == 0 {
		t.Errorf("overlapping range consumers should share; candidates %v", out.Stats.CandidateLabels)
	}
}

// TestFigure7CandidateShapes: the nested query's no-heuristics candidate set
// matches Figure 7's structure — the C⋈O⋈L join (E1), narrower two-table
// joins (E2, E3), and the aggregation γ(C⋈O⋈L) (E4, the one used). With
// pruning, only the aggregation survives and appears in the final plan.
func TestFigure7CandidateShapes(t *testing.T) {
	nested := `
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
  select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey)
order by totaldisc desc;`

	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, nested)
	s := core.DefaultSettings()
	s.Heuristics = false
	out, err := core.Optimize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]bool{}
	for _, l := range out.Stats.CandidateLabels {
		shapes[labelShape(l)] = true
	}
	for _, want := range []string{
		"(customer ⋈ lineitem ⋈ orders)",  // E1
		"(customer ⋈ orders)",             // E2
		"(lineitem ⋈ orders)",             // E3
		"γ(customer ⋈ lineitem ⋈ orders)", // E4
	} {
		if !shapes[want] {
			t.Errorf("Figure 7 candidate %q missing; have %v", want, shapes)
		}
	}

	// With pruning: exactly the aggregation, used in the plan (paper: only
	// E4 was generated and used).
	m2 := buildMemo(t, testCatalog(t, 0.01), nested)
	out2, err := core.Optimize(m2, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Stats.Candidates != 1 || len(out2.Stats.UsedCSEs) != 1 {
		t.Fatalf("pruned candidates = %d used = %v, want 1/1",
			out2.Stats.Candidates, out2.Stats.UsedCSEs)
	}
	if got := labelShape(out2.Stats.CandidateLabels[0]); got != "γ(customer ⋈ lineitem ⋈ orders)" {
		t.Errorf("surviving candidate = %q, want the paper's E4", got)
	}
	// Both modes find the same plan cost (pruning misses nothing).
	if out.Stats.FinalCost != out2.Stats.FinalCost {
		t.Errorf("pruning changed the plan: %.2f vs %.2f", out2.Stats.FinalCost, out.Stats.FinalCost)
	}
}

// labelShape strips the predicate/consumer decoration off a candidate label.
func labelShape(label string) string {
	if i := strings.Index(label, ")"); i >= 0 {
		return label[:i+1]
	}
	return label
}

// TestStackedSharedBetweenTwoCSEs is §5.5's example shape: two covering
// subexpressions over {C,O,L} and {O,L,P} share the smaller {O,L}
// subexpression. With two consumer pairs per wide shape, the optimizer can
// compute γ(O⋈L) once and feed both wider CSEs.
func TestStackedSharedBetweenTwoCSEs(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, `
select c_nationkey, sum(l_extendedprice) as v from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and c_nationkey < 15
group by c_nationkey;
select c_mktsegment, sum(l_extendedprice) as v from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and c_nationkey > 5
group by c_mktsegment;
select p_brand, sum(l_extendedprice) as v from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and p_size < 25
group by p_brand;
select p_mfgr, sum(l_quantity) as q from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01' and p_size > 10
group by p_mfgr;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("candidates: %v used: %v", out.Stats.CandidateLabels, out.Stats.UsedCSEs)
	if len(out.Stats.UsedCSEs) < 2 {
		t.Fatalf("expected multiple CSEs in the final plan, used %v of %v",
			out.Stats.UsedCSEs, out.Stats.CandidateLabels)
	}
	// At least one used CSE's plan must read another used CSE's spool.
	stackedReads := 0
	for id, cse := range out.Result.CSEs {
		used := map[int]bool{}
		cse.Plan.UsedSpoolIDs(used)
		for other := range used {
			if other != id {
				stackedReads++
			}
		}
	}
	if stackedReads < 1 {
		t.Errorf("no stacked spool reads; plans:\n%s", out.Result.Format(m.Md))
	}
	if out.Stats.FinalCost >= out.Stats.BaseCost {
		t.Error("stacked sharing must beat the baseline")
	}
}

// TestFigure6CandidateShapes asserts the exact no-heuristics candidate
// shapes of Example 1 (Figure 6): E1 C⋈O, E2 O⋈L, E3 C⋈O⋈L, E4 γ(O⋈L),
// E5 γ(C⋈O⋈L).
func TestFigure6CandidateShapes(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	s := core.DefaultSettings()
	s.Heuristics = false
	out, err := core.Optimize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]bool{}
	for _, l := range out.Stats.CandidateLabels {
		shapes[labelShape(l)] = true
	}
	want := []string{
		"(customer ⋈ orders)",             // E1
		"(lineitem ⋈ orders)",             // E2
		"(customer ⋈ lineitem ⋈ orders)",  // E3
		"γ(lineitem ⋈ orders)",            // E4
		"γ(customer ⋈ lineitem ⋈ orders)", // E5
	}
	for _, w := range want {
		if !shapes[w] {
			t.Errorf("Figure 6 candidate %q missing; have %v", w, shapes)
		}
	}
	if len(out.Stats.CandidateLabels) != len(want) {
		t.Errorf("candidates = %d, want exactly the 5 of Figure 6", len(out.Stats.CandidateLabels))
	}
}
