package core

import (
	"math/bits"
	"sort"
	"testing"
)

// The predecessor of sortedSetKey sorted the caller's slice in place as a
// side effect of computing a map key, silently reordering the live
// enabled/used sets recorded in trace events. This pins the fix.
func TestSortedSetKeyDoesNotMutateInput(t *testing.T) {
	ids := []int{3, 1, 2}
	got := sortedSetKey(ids)
	if want := "1,2,3,"; got != want {
		t.Fatalf("sortedSetKey = %q, want %q", got, want)
	}
	if ids[0] != 3 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("sortedSetKey mutated its input: %v", ids)
	}
}

// The lattice's lazy Gosper enumeration must visit exactly the masks the old
// materialize-and-sort enumeration visited, in the same order: popcount
// descending, numerically ascending within a popcount band.
func TestLatticeEnumerationOrder(t *testing.T) {
	const n = 5
	full := uint64(1)<<n - 1

	var want []uint64
	for m := full; m >= 1; m-- {
		want = append(want, m)
	}
	sort.SliceStable(want, func(a, b int) bool {
		pa, pb := bits.OnesCount64(want[a]), bits.OnesCount64(want[b])
		if pa != pb {
			return pa > pb
		}
		return want[a] < want[b]
	})

	var got []uint64
	for k := n; k >= 1; k-- {
		mask := uint64(1)<<uint(k) - 1
		for ok := true; ok; mask, ok = gosperNext(mask, full) {
			got = append(got, mask)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("enumerated %d masks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mask %d: got %b, want %b", i, got[i], want[i])
		}
	}
}
