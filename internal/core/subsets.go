package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
)

// subsetRule encodes Proposition 5.5: after optimizing with S = R ∪ T where
// every member of T is independent of all other members of S, any subset
// that keeps R and drops part of T is redundant.
type subsetRule struct {
	r, t uint64
}

func (ru subsetRule) skips(mask uint64) bool {
	full := ru.r | ru.t
	return mask&^full == 0 && mask&ru.r == ru.r && mask != full && mask != 0
}

// maxLatticeCandidates bounds full subset-lattice enumeration; larger
// candidate sets use the converging strategy below.
const maxLatticeCandidates = 16

// subsetOpts configures the §5.3 enumeration.
type subsetOpts struct {
	pruning  bool // Propositions 5.4–5.6
	extended bool // interval strengthening of Proposition 5.6
	maxOpts  int
	trace    *obs.Trace // nil when tracing is off
}

// intervalRule skips every set strictly between lo and hi (inclusive of lo,
// exclusive of hi): the optimizer already proved the plan using lo optimal
// for all of them.
type intervalRule struct {
	lo, hi uint64
}

func (ru intervalRule) skips(mask uint64) bool {
	return mask&^ru.hi == 0 && mask&ru.lo == ru.lo && mask != ru.hi && mask != 0
}

// optimizeSubsets runs the §5.3 procedure: enumerate candidate subsets in
// descending size order, optimizing with each set enabled, applying
// Propositions 5.4–5.6 (and optionally the interval strengthening) to skip
// redundant combinations. It returns the best result found, the candidate
// set it uses, and the number of optimizations performed.
func optimizeSubsets(o *opt.Optimizer, m *memo.Memo, cands []*opt.Candidate, opts subsetOpts) (*opt.Result, []int, int, error) {
	if len(cands) > maxLatticeCandidates {
		return optimizeSubsetsLarge(o, m, cands, opts)
	}
	n := len(cands)
	idOf := make([]int, n)
	for i, c := range cands {
		idOf[i] = c.ID
	}

	// Competing/independent classification (Definition 5.2) via the memo
	// DAG ancestry of charge groups (the generalized LCAs).
	closure := make([]map[memo.GroupID]bool, n)
	for i, c := range cands {
		closure[i] = m.DescendantClosure(c.ChargeGroup)
	}
	competing := func(i, j int) bool {
		return closure[i][cands[j].ChargeGroup] || closure[j][cands[i].ChargeGroup]
	}

	masks := make([]uint64, 0, 1<<uint(n)-1)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(a, b int) bool {
		pa, pb := bits.OnesCount64(masks[a]), bits.OnesCount64(masks[b])
		if pa != pb {
			return pa > pb
		}
		return masks[a] < masks[b]
	})

	independentPart := func(mask uint64) uint64 {
		var t uint64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			indep := true
			for j := 0; j < n; j++ {
				if i == j || mask&(1<<uint(j)) == 0 {
					continue
				}
				if competing(i, j) {
					indep = false
					break
				}
			}
			if indep {
				t |= 1 << uint(i)
			}
		}
		return t
	}

	var rules []subsetRule
	var intervals []intervalRule
	skipExact := make(map[uint64]bool)
	skipped := func(mask uint64) bool {
		if skipExact[mask] {
			return true
		}
		for _, ru := range rules {
			if ru.skips(mask) {
				return true
			}
		}
		for _, ru := range intervals {
			if ru.skips(mask) {
				return true
			}
		}
		return false
	}
	addRules := func(mask uint64) {
		t := independentPart(mask)
		rules = append(rules, subsetRule{r: mask &^ t, t: t})
	}

	var best *opt.Result
	var bestUsed []int
	nOpts := 0
	for _, mask := range masks {
		if nOpts >= opts.maxOpts {
			break // elapsed-effort gate (§2.1 phase bounding)
		}
		if opts.pruning && skipped(mask) {
			continue
		}
		var enabled []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				enabled = append(enabled, idOf[i])
			}
		}
		res, usedIDs, err := o.OptimizeWithCSEs(enabled)
		if err != nil {
			return nil, nil, nOpts, err
		}
		nOpts++
		if opts.trace != nil {
			opts.trace.Add(obs.Event{
				Kind:    obs.EvSubsetOpt,
				Enabled: append([]int(nil), enabled...),
				Used:    append([]int(nil), usedIDs...),
				Values:  map[string]float64{"cost": res.Cost},
			})
		}
		if best == nil || res.Cost < best.Cost {
			best = res
			bestUsed = usedIDs
		}
		if !opts.pruning {
			continue
		}
		addRules(mask)
		// Proposition 5.6: the returned plan is also optimal for the set it
		// actually used; treat that set as optimized too.
		var usedMask uint64
		for _, id := range usedIDs {
			for i, cid := range idOf {
				if cid == id {
					usedMask |= 1 << uint(i)
				}
			}
		}
		if usedMask != 0 && usedMask != mask {
			skipExact[usedMask] = true
			addRules(usedMask)
		}
		if opts.extended {
			intervals = append(intervals, intervalRule{lo: usedMask, hi: mask})
		}
	}
	return best, bestUsed, nOpts, nil
}

// optimizeSubsetsLarge handles candidate sets too large for full lattice
// enumeration (the paper's Table 4 "no heuristics" run generated 51). It
// leans on Proposition 5.6: optimize with everything enabled, then re-run
// with exactly the set the winner used, converging in a few steps; finally
// the (small) lattice of the converged used set is explored to catch
// competing-candidate effects among the survivors.
func optimizeSubsetsLarge(o *opt.Optimizer, m *memo.Memo, cands []*opt.Candidate, opts subsetOpts) (*opt.Result, []int, int, error) {
	idSet := make([]int, len(cands))
	for i, c := range cands {
		idSet[i] = c.ID
	}
	tried := make(map[string]bool)
	keyOf := func(ids []int) string {
		sort.Ints(ids)
		return setKey(ids)
	}

	var best *opt.Result
	var bestUsed []int
	nOpts := 0
	cur := idSet
	for nOpts < opts.maxOpts && len(cur) > 0 && !tried[keyOf(cur)] {
		tried[keyOf(cur)] = true
		res, used, err := o.OptimizeWithCSEs(append([]int(nil), cur...))
		if err != nil {
			return nil, nil, nOpts, err
		}
		nOpts++
		if opts.trace != nil {
			opts.trace.Add(obs.Event{
				Kind:    obs.EvSubsetOpt,
				Enabled: append([]int(nil), cur...),
				Used:    append([]int(nil), used...),
				Values:  map[string]float64{"cost": res.Cost},
			})
		}
		if best == nil || res.Cost < best.Cost {
			best = res
			bestUsed = used
		}
		if len(used) == 0 || keyOf(append([]int(nil), used...)) == keyOf(append([]int(nil), cur...)) {
			break
		}
		cur = used
	}

	// Explore the survivors' lattice when small enough.
	if len(bestUsed) > 1 && len(bestUsed) <= 8 && nOpts < opts.maxOpts {
		survivors := make([]*opt.Candidate, 0, len(bestUsed))
		for _, id := range bestUsed {
			for _, c := range cands {
				if c.ID == id {
					survivors = append(survivors, c)
				}
			}
		}
		sub := opts
		sub.maxOpts = opts.maxOpts - nOpts
		res2, used2, n2, err := optimizeSubsets(o, m, survivors, sub)
		if err != nil {
			return nil, nil, nOpts, err
		}
		nOpts += n2
		if res2 != nil && (best == nil || res2.Cost < best.Cost) {
			best = res2
			bestUsed = used2
		}
	}
	return best, bestUsed, nOpts, nil
}

// setKey renders a sorted id list.
func setKey(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}
