package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
)

// subsetRule encodes Proposition 5.5: after optimizing with S = R ∪ T where
// every member of T is independent of all other members of S, any subset
// that keeps R and drops part of T is redundant.
type subsetRule struct {
	r, t uint64
}

func (ru subsetRule) skips(mask uint64) bool {
	full := ru.r | ru.t
	return mask&^full == 0 && mask&ru.r == ru.r && mask != full && mask != 0
}

// maxLatticeCandidates bounds full subset-lattice enumeration under the auto
// strategy; larger candidate sets use the greedy search.
const maxLatticeCandidates = 16

// maxMaskCandidates is the hard candidate-universe bound of the mask-based
// search bookkeeping (uint64 bitmasks, with the full lattice mask needing one
// spare bit). A forced lattice beyond it falls back to greedy; greedy itself
// restricts the move universe to the first maxMaskCandidates candidates.
const maxMaskCandidates = 63

// subsetOpts configures the §5.3 cost-based selection search.
type subsetOpts struct {
	pruning  bool // Propositions 5.4–5.6
	extended bool // interval strengthening of Proposition 5.6
	maxOpts  int
	strategy SearchStrategy // resolved: SearchLattice or SearchGreedy
	baseCost float64        // cost of the no-CSE plan (the empty set's known cost)
	trace    *obs.Trace     // nil when tracing is off
	span     *obs.Span      // nil when span tracing is off
}

// intervalRule skips every set strictly between lo and hi (inclusive of lo,
// exclusive of hi): the optimizer already proved the plan using lo optimal
// for all of them.
type intervalRule struct {
	lo, hi uint64
}

func (ru intervalRule) skips(mask uint64) bool {
	return mask&^ru.hi == 0 && mask&ru.lo == ru.lo && mask != ru.hi && mask != 0
}

// pruner accumulates the Proposition 5.4–5.6 redundancy rules observed
// during a search. Both search strategies share it: every evaluated
// (enabled → used) pair teaches it which not-yet-tried subsets are already
// proven redundant.
type pruner struct {
	rules     []subsetRule
	intervals []intervalRule
	skipExact map[uint64]bool

	independentPart func(mask uint64) uint64
	extended        bool
}

func newPruner(m *memo.Memo, cands []*opt.Candidate, extended bool) *pruner {
	n := len(cands)
	// Competing/independent classification (Definition 5.2) via the memo
	// DAG ancestry of charge groups (the generalized LCAs).
	closure := make([]map[memo.GroupID]bool, n)
	for i, c := range cands {
		closure[i] = m.DescendantClosure(c.ChargeGroup)
	}
	competing := func(i, j int) bool {
		return closure[i][cands[j].ChargeGroup] || closure[j][cands[i].ChargeGroup]
	}
	return &pruner{
		skipExact: make(map[uint64]bool),
		extended:  extended,
		independentPart: func(mask uint64) uint64 {
			var t uint64
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				indep := true
				for j := 0; j < n; j++ {
					if i == j || mask&(1<<uint(j)) == 0 {
						continue
					}
					if competing(i, j) {
						indep = false
						break
					}
				}
				if indep {
					t |= 1 << uint(i)
				}
			}
			return t
		},
	}
}

// skips reports whether the set is already proven redundant: its optimal
// plan equals that of an already-optimized superset.
func (p *pruner) skips(mask uint64) bool {
	if p.skipExact[mask] {
		return true
	}
	for _, ru := range p.rules {
		if ru.skips(mask) {
			return true
		}
	}
	for _, ru := range p.intervals {
		if ru.skips(mask) {
			return true
		}
	}
	return false
}

// observe records the redundancy rules implied by one optimization: the
// Proposition 5.5 rule of the enabled set, and — when the winner used a
// strict subset — Proposition 5.6's exact-set rule (plus the interval
// strengthening when enabled).
func (p *pruner) observe(mask, usedMask uint64) {
	p.addRule(mask)
	if usedMask != 0 && usedMask != mask {
		p.skipExact[usedMask] = true
		p.addRule(usedMask)
	}
	if p.extended {
		p.intervals = append(p.intervals, intervalRule{lo: usedMask, hi: mask})
	}
}

func (p *pruner) addRule(mask uint64) {
	t := p.independentPart(mask)
	p.rules = append(p.rules, subsetRule{r: mask &^ t, t: t})
}

// optimizeSubsets runs the §5.3 cost-based selection over candidate subsets
// with the resolved strategy: the exhaustive (pruned) lattice, or the greedy
// local search for large candidate sets. It returns the best result found,
// the candidate set it uses, and the number of optimizations performed.
func optimizeSubsets(o *opt.Optimizer, m *memo.Memo, cands []*opt.Candidate, opts subsetOpts) (*opt.Result, []int, int, error) {
	if opts.strategy == SearchGreedy || len(cands) > maxMaskCandidates {
		return optimizeSubsetsGreedy(o, m, cands, opts)
	}
	return optimizeSubsetsLattice(o, m, cands, opts)
}

// optimizeSubsetsLattice runs the paper's §5.3 procedure: enumerate candidate
// subsets in descending size order, optimizing with each set enabled,
// applying Propositions 5.4–5.6 (and optionally the interval strengthening)
// to skip redundant combinations. Masks are generated lazily (Gosper's hack
// within each popcount band), so a large candidate universe under a small
// optimization budget never materializes the 2^N−1 mask list.
func optimizeSubsetsLattice(o *opt.Optimizer, m *memo.Memo, cands []*opt.Candidate, opts subsetOpts) (*opt.Result, []int, int, error) {
	n := len(cands)
	idOf := make([]int, n)
	for i, c := range cands {
		idOf[i] = c.ID
	}
	pr := newPruner(m, cands, opts.extended)

	var best *opt.Result
	var bestUsed []int
	nOpts := 0
	full := uint64(1)<<uint(n) - 1
enumeration:
	for k := n; k >= 1; k-- {
		mask := uint64(1)<<uint(k) - 1
		for ok := true; ok; mask, ok = gosperNext(mask, full) {
			if nOpts >= opts.maxOpts {
				break enumeration // elapsed-effort gate (§2.1 phase bounding)
			}
			if opts.pruning && pr.skips(mask) {
				continue
			}
			enabled := make([]int, 0, bits.OnesCount64(mask))
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					enabled = append(enabled, idOf[i])
				}
			}
			res, usedIDs, err := o.OptimizeWithCSEs(enabled)
			if err != nil {
				return nil, nil, nOpts, err
			}
			nOpts++
			if opts.trace != nil {
				opts.trace.Add(obs.Event{
					Kind:    obs.EvSubsetOpt,
					Enabled: append([]int(nil), enabled...),
					Used:    append([]int(nil), usedIDs...),
					Values:  map[string]float64{"cost": res.Cost},
				})
			}
			if best == nil || res.Cost < best.Cost {
				best = res
				bestUsed = usedIDs
			}
			if !opts.pruning {
				continue
			}
			// Proposition 5.6: the returned plan is also optimal for the set
			// it actually used; treat that set as optimized too.
			var usedMask uint64
			for _, id := range usedIDs {
				for i, cid := range idOf {
					if cid == id {
						usedMask |= 1 << uint(i)
					}
				}
			}
			pr.observe(mask, usedMask)
		}
	}
	return best, bestUsed, nOpts, nil
}

// gosperNext returns the numerically-next mask with the same popcount
// (Gosper's hack), or ok=false once past the full-universe mask. Callers
// guarantee full < 1<<63, so the intermediate sum never overflows.
func gosperNext(mask, full uint64) (uint64, bool) {
	c := mask & -mask
	r := mask + c
	next := ((r ^ mask) >> 2 / c) | r
	if next > full {
		return 0, false
	}
	return next, true
}

// greedyEval is one memoized reoptimization of the greedy search.
type greedyEval struct {
	res      *opt.Result
	used     []int
	usedMask uint64
	cost     float64
}

// optimizeSubsetsGreedy searches the candidate lattice by greedy local moves
// instead of enumeration, in the spirit of Roy et al.'s Volcano-RU/greedy
// heuristics and Kathuria & Sudarshan's approximate greedy: seed with one
// all-enabled optimization, snap to the set the winner actually used
// (Proposition 5.6), then repeatedly evaluate every single-candidate
// add/drop move and commit the one with the best marginal cost delta, until
// no move improves the cost or the optimization budget is spent. Every
// reoptimization reuses §5.4 optimization history inside the optimizer, and
// the Proposition 5.4–5.6 rules learned from evaluated sets skip moves whose
// outcome is already proven, so each round costs at most O(N) optimizer
// calls and the whole search O(N·k) for k committed moves.
func optimizeSubsetsGreedy(o *opt.Optimizer, m *memo.Memo, cands []*opt.Candidate, opts subsetOpts) (*opt.Result, []int, int, error) {
	if len(cands) > maxMaskCandidates {
		// The move bookkeeping uses uint64 masks; restrict the move universe
		// to the first 63 candidates (a capped generator orders them by
		// potential, so the tail is the least promising).
		if opts.trace != nil {
			opts.trace.Add(obs.Event{
				Kind:   obs.EvGreedyMove,
				Reason: fmt.Sprintf("candidate universe truncated from %d to %d for mask bookkeeping", len(cands), maxMaskCandidates),
			})
		}
		cands = cands[:maxMaskCandidates]
	}
	n := len(cands)
	idOf := make([]int, n)
	indexOf := make(map[int]int, n)
	for i, c := range cands {
		idOf[i] = c.ID
		indexOf[c.ID] = i
	}
	idsOf := func(mask uint64) []int {
		out := make([]int, 0, bits.OnesCount64(mask))
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				out = append(out, idOf[i])
			}
		}
		sort.Ints(out)
		return out
	}

	var pr *pruner
	if opts.pruning {
		pr = newPruner(m, cands, opts.extended)
	}

	var best *opt.Result
	var bestUsed []int
	nOpts := 0
	evals := make(map[uint64]*greedyEval)

	// evaluate optimizes with the given set enabled, memoizing by mask and
	// (via Proposition 5.6) by the used set. A nil eval with nil error means
	// the optimization budget is exhausted.
	evaluate := func(mask uint64) (*greedyEval, error) {
		if e, ok := evals[mask]; ok {
			return e, nil
		}
		if nOpts >= opts.maxOpts {
			return nil, nil
		}
		enabled := idsOf(mask)
		res, usedIDs, err := o.OptimizeWithCSEs(enabled)
		if err != nil {
			return nil, err
		}
		nOpts++
		if opts.trace != nil {
			opts.trace.Add(obs.Event{
				Kind:    obs.EvSubsetOpt,
				Enabled: append([]int(nil), enabled...),
				Used:    append([]int(nil), usedIDs...),
				Values:  map[string]float64{"cost": res.Cost},
			})
		}
		var usedMask uint64
		for _, id := range usedIDs {
			if i, ok := indexOf[id]; ok {
				usedMask |= 1 << uint(i)
			}
		}
		e := &greedyEval{res: res, used: usedIDs, usedMask: usedMask, cost: res.Cost}
		evals[mask] = e
		evals[usedMask] = e // Prop 5.6: the winner is optimal for its used set
		if pr != nil {
			pr.observe(mask, usedMask)
		}
		if best == nil || res.Cost < best.Cost {
			best = res
			bestUsed = usedIDs
		}
		return e, nil
	}

	// Seed: one optimization with everything enabled (Volcano-RU style), then
	// start the local search from the set the winner actually used.
	full := uint64(1)<<uint(n) - 1
	seed, err := evaluate(full)
	if err != nil || seed == nil {
		return best, bestUsed, nOpts, err
	}
	cur, curCost := seed.usedMask, seed.cost
	if opts.trace != nil {
		opts.trace.Add(obs.Event{
			Kind:    obs.EvGreedyMove,
			Enabled: idsOf(cur),
			Used:    append([]int(nil), seed.used...),
			Reason:  "seed: all-enabled optimization, snapped to the used set",
			Values:  map[string]float64{"cost": curCost, "round": 0},
		})
	}

	for round := 1; nOpts < opts.maxOpts; round++ {
		roundSpan := opts.span.Child("greedy-round")
		roundSpan.SetAttr("round", round)
		var bestMove *greedyEval
		bestMoveBit := -1
		bestMoveCost := curCost
		bestMoveEmpty := false
		evaluated := 0
		budgetOut := false
		for i := 0; i < n; i++ {
			mv := cur ^ (1 << uint(i))
			var mvCost float64
			var e *greedyEval
			switch {
			case mv == 0:
				// Dropping the last member lands on the empty set, whose cost
				// — the no-CSE base plan — is already known for free.
				mvCost = opts.baseCost
			case pr != nil && pr.skips(mv):
				// The move's optimal plan equals an already-evaluated
				// superset's winner, which cannot beat the current cost.
				continue
			default:
				var err error
				e, err = evaluate(mv)
				if err != nil {
					roundSpan.End()
					return nil, nil, nOpts, err
				}
				if e == nil {
					budgetOut = true
					break
				}
				mvCost = e.cost
				evaluated++
			}
			if mvCost < bestMoveCost {
				bestMove, bestMoveBit, bestMoveCost = e, i, mvCost
				bestMoveEmpty = mv == 0
			}
		}
		roundSpan.SetAttr("moves_evaluated", evaluated)
		if bestMoveBit < 0 || bestMoveEmpty || bestMove == nil {
			// Converged: no move strictly improves the cost, or the best move
			// is the empty set (the caller falls back to the base plan when
			// the search never beats it).
			roundSpan.SetAttr("converged", !budgetOut)
			roundSpan.End()
			break
		}
		verb := "add"
		if cur&(1<<uint(bestMoveBit)) != 0 {
			verb = "drop"
		}
		delta := curCost - bestMoveCost
		cur, curCost = bestMove.usedMask, bestMove.cost
		roundSpan.SetAttr("move", fmt.Sprintf("%s CSE%d", verb, idOf[bestMoveBit]))
		roundSpan.SetAttr("cost", curCost)
		roundSpan.End()
		if opts.trace != nil {
			opts.trace.Add(obs.Event{
				Kind:    obs.EvGreedyMove,
				Enabled: idsOf(cur),
				Used:    append([]int(nil), bestMove.used...),
				Reason:  fmt.Sprintf("%s CSE%d", verb, idOf[bestMoveBit]),
				Values:  map[string]float64{"cost": curCost, "delta": delta, "round": float64(round)},
			})
		}
	}
	return best, bestUsed, nOpts, nil
}

// sortedSetKey renders an id set as a canonical key without mutating the
// caller's slice (sorting in place here once reordered live Enabled/used
// slices as a side effect of key computation).
func sortedSetKey(ids []int) string {
	s := append([]int(nil), ids...)
	sort.Ints(s)
	return setKey(s)
}

// setKey renders a sorted id list.
func setKey(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d,", id)
	}
	return sb.String()
}
