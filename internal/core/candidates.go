package core

import (
	"fmt"
	"sort"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/scalar"
)

// groupInts converts memo group IDs for an obs.Event's Groups field.
func groupInts(ids []memo.GroupID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// detectSets queries the CSE manager's signature table for signatures
// referenced by two or more expressions from different parts of the query
// (Step 2's first half). Single-table ungrouped signatures are skipped:
// spooling a base-table selection shares no computation worth materializing.
func detectSets(m *memo.Memo) [][]memo.GroupID {
	index := m.SignatureGroups()
	keys := make([]string, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out [][]memo.GroupID
	for _, k := range keys {
		groups := index[k]
		var eligible []memo.GroupID
		for _, gid := range groups {
			g := m.Group(gid)
			if g.StmtIdx < 0 {
				continue // candidate-expression groups join in round 2 only
			}
			if !g.Sig.Grouped && len(g.Sig.Tables) < 2 {
				continue
			}
			eligible = append(eligible, gid)
		}
		if len(eligible) >= 2 {
			out = append(out, eligible)
		}
	}
	return out
}

// compatClasses partitions a signature set into join-compatible classes
// (Definition 4.1): within a class the intersection of all members'
// equivalence classes induces a connected equijoin graph.
func compatClasses(m *memo.Memo, set []memo.GroupID) [][]memo.GroupID {
	type class struct {
		members []memo.GroupID
		inter   *baseEquiv
		tables  []string
	}
	var classes []*class
outer:
	for _, gid := range set {
		g := m.Group(gid)
		eq := equivOf(m.Md, g)
		for _, cl := range classes {
			inter := intersectEquiv(cl.inter, eq)
			if inter.connectedOver(cl.tables) {
				cl.members = append(cl.members, gid)
				cl.inter = inter
				continue outer
			}
		}
		classes = append(classes, &class{
			members: []memo.GroupID{gid},
			inter:   eq,
			tables:  g.Sig.Tables,
		})
	}
	var out [][]memo.GroupID
	for _, cl := range classes {
		out = append(out, cl.members)
	}
	return out
}

// generator runs candidate generation (§4.3) for one optimization.
type generator struct {
	m   *memo.Memo
	o   *opt.Optimizer
	set Settings
	cq  float64 // cost of the best plan found before CSE optimization

	stats *Stats
	trace *obs.Trace // nil when tracing is off
}

// lowerOf returns a group's lower cost bound.
func (g *generator) lowerOf(gid memo.GroupID) (float64, error) {
	w, err := g.o.Winner(gid)
	if err != nil {
		return 0, err
	}
	return w.Lower, nil
}

// upperOf returns a group's upper cost bound.
func (g *generator) upperOf(gid memo.GroupID) (float64, error) {
	w, err := g.o.Winner(gid)
	if err != nil {
		return 0, err
	}
	return w.Upper, nil
}

// heuristic1 (§4.3.1): the consumers' maximum possible contribution must be
// a significant fraction of the whole-query cost. label names the unit being
// tested ("signature set" or "compat class") in the trace.
func (g *generator) heuristic1(consumers []memo.GroupID, label string) (bool, error) {
	sum := 0.0
	for _, cid := range consumers {
		lo, err := g.lowerOf(cid)
		if err != nil {
			return false, err
		}
		sum += lo
	}
	threshold := g.set.Alpha * g.cq
	ok := sum >= threshold
	if !ok {
		g.stats.PrunedH1++
	}
	if g.trace != nil {
		g.trace.Add(obs.Event{
			Kind:   obs.EvH1,
			Label:  label,
			Groups: groupInts(consumers),
			Pruned: !ok,
			Reason: "sum of consumer lower bounds vs alpha*C_Q",
			Values: map[string]float64{
				"sum_lower": sum,
				"alpha":     g.set.Alpha,
				"cq":        g.cq,
				"threshold": threshold,
			},
		})
	}
	return ok, nil
}

// heuristic2 (§4.3.2) drops consumers whose results are cheap to compute but
// expensive to materialize and read.
func (g *generator) heuristic2(consumers []memo.GroupID) ([]memo.GroupID, error) {
	n := float64(len(consumers))
	var kept []memo.GroupID
	for _, cid := range consumers {
		grp := g.m.Group(cid)
		upper, err := g.upperOf(cid)
		if err != nil {
			return nil, err
		}
		bytes := grp.Rows * grp.RowSize
		cw := opt.SpoolWriteCost(grp.Rows, bytes)
		cr := opt.SpoolReadCost(grp.Rows, bytes)
		if upper < cr+(upper+cw)/n {
			g.stats.PrunedH2++
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvH2,
					Groups: []int{int(cid)},
					Pruned: true,
					Reason: "cheap to compute, expensive to spool and read back",
					Values: map[string]float64{
						"upper":      upper,
						"read_cost":  cr,
						"write_cost": cw,
						"consumers":  n,
						"threshold":  cr + (upper+cw)/n,
					},
				})
			}
			continue // discard consumer
		}
		kept = append(kept, cid)
	}
	return kept, nil
}

// costUsing estimates the total contribution of using a candidate spec:
// C_E + C_W + Σ C_R, with C_E approximated from below by the highest of the
// consumers' lower bounds (§4.3.3). A trivial (single-consumer) spec costs
// what computing the consumer directly costs — no spool.
func (g *generator) costUsing(s *spec) (float64, error) {
	if len(s.consumers) == 1 {
		return g.lowerOf(s.consumers[0])
	}
	ce := 0.0
	for _, cid := range s.consumers {
		lo, err := g.lowerOf(cid)
		if err != nil {
			return 0, err
		}
		if lo > ce {
			ce = lo
		}
	}
	cw := opt.SpoolWriteCost(s.rows, s.bytes)
	cr := opt.SpoolReadCost(s.rows, s.bytes)
	return ce + cw + cr*float64(len(s.consumers)), nil
}

// maxBestImprovementClass bounds the class size for Algorithm 1's
// best-improvement merge scan. Each round of that scan rebuilds a merged
// spec for every remaining member (O(k²) buildSpec calls per round), which
// is fine for the paper's tens-of-queries batches but dominates optimization
// time once generated batches put hundreds of similar consumers in one
// join-compatible class. Larger classes fall back to a first-fit chain pass.
const maxBestImprovementClass = 24

// algorithm1 is the paper's greedy candidate generation: start from trivial
// CSEs and merge while the Δ benefit (§4.3.3, Heuristic 3) is positive.
func (g *generator) algorithm1(consumers []memo.GroupID) ([]*spec, error) {
	r := make([]*spec, 0, len(consumers))
	for _, cid := range consumers {
		s, err := buildSpec(g.m, []memo.GroupID{cid})
		if err != nil {
			continue // e.g. self-join alignment failure: not coverable
		}
		r = append(r, s)
	}
	if len(r) > maxBestImprovementClass {
		return g.mergeFirstFit(r)
	}
	var out []*spec
	for len(r) > 1 {
		cur := r[0]
		r = r[1:]
		isCandidate := false
		lastDelta := 0.0
		for len(r) > 0 {
			bestIdx := -1
			var bestMerged *spec
			bestDelta := g.set.MinMergeBenefit
			bestMergedCost := 0.0
			curCost, err := g.costUsing(cur)
			if err != nil {
				return nil, err
			}
			for i, m := range r {
				merged, err := buildSpec(g.m, append(append([]memo.GroupID(nil), cur.consumers...), m.consumers...))
				if err != nil {
					continue
				}
				mCost, err := g.costUsing(m)
				if err != nil {
					return nil, err
				}
				mergedCost, err := g.costUsing(merged)
				if err != nil {
					return nil, err
				}
				delta := curCost + mCost - mergedCost
				if delta > bestDelta {
					bestDelta = delta
					bestIdx = i
					bestMerged = merged
					bestMergedCost = mergedCost
				}
			}
			lastDelta = bestDelta
			if bestIdx < 0 {
				break // no more beneficial merging exists
			}
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvH3Merge,
					Groups: groupInts(bestMerged.consumers),
					Reason: "Algorithm 1 greedy merge with positive Δ benefit",
					Values: map[string]float64{
						"delta":       bestDelta,
						"cur_cost":    curCost,
						"merged_cost": bestMergedCost,
					},
				})
			}
			r = append(r[:bestIdx], r[bestIdx+1:]...)
			cur = bestMerged
			isCandidate = true
		}
		if isCandidate {
			out = append(out, cur)
		} else {
			g.stats.PrunedH3++
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvH3Drop,
					Groups: groupInts(cur.consumers),
					Pruned: true,
					Reason: "no merge with positive Δ benefit; trivial spec discarded",
					Values: map[string]float64{"best_delta": lastDelta},
				})
			}
		}
	}
	return out, nil
}

// mergeFirstFit is the large-class variant of Algorithm 1: instead of
// rescanning every remaining member for the best Δ each round, it grows one
// chain per pass and commits the first merge that clears MinMergeBenefit.
// On batches of similar queries almost every attempted merge succeeds, so
// this does O(k) buildSpec calls where best-improvement does O(k²) per
// round — at the price of possibly picking a worse merge order.
func (g *generator) mergeFirstFit(r []*spec) ([]*spec, error) {
	var out []*spec
	for len(r) > 1 {
		cur := r[0]
		r = r[1:]
		isCandidate := false
		curCost, err := g.costUsing(cur)
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(r); {
			m := r[i]
			merged, err := buildSpec(g.m, append(append([]memo.GroupID(nil), cur.consumers...), m.consumers...))
			if err != nil {
				i++
				continue
			}
			mCost, err := g.costUsing(m)
			if err != nil {
				return nil, err
			}
			mergedCost, err := g.costUsing(merged)
			if err != nil {
				return nil, err
			}
			delta := curCost + mCost - mergedCost
			if delta <= g.set.MinMergeBenefit {
				i++
				continue
			}
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvH3Merge,
					Groups: groupInts(merged.consumers),
					Reason: "first-fit merge with positive Δ benefit (large class)",
					Values: map[string]float64{
						"delta":       delta,
						"cur_cost":    curCost,
						"merged_cost": mergedCost,
					},
				})
			}
			r = append(r[:i], r[i+1:]...)
			cur = merged
			curCost = mergedCost
			isCandidate = true
		}
		if isCandidate {
			out = append(out, cur)
		} else {
			g.stats.PrunedH3++
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvH3Drop,
					Groups: groupInts(cur.consumers),
					Pruned: true,
					Reason: "no merge with positive Δ benefit; trivial spec discarded",
					Values: map[string]float64{"best_delta": g.set.MinMergeBenefit},
				})
			}
		}
	}
	return out, nil
}

// generate runs detection and candidate generation, returning final specs.
func (g *generator) generate() ([]*spec, error) {
	sets := detectSets(g.m)
	g.stats.SignatureSets = len(sets)
	var specs []*spec
	for _, set := range sets {
		if g.trace != nil {
			g.trace.Add(obs.Event{
				Kind:   obs.EvSignatureSet,
				Label:  g.m.Group(set[0]).Sig.String(),
				Groups: groupInts(set),
			})
		}
		if g.set.Heuristics {
			ok, err := g.heuristic1(set, "signature set")
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		for _, class := range compatClasses(g.m, set) {
			if len(class) < 2 {
				continue
			}
			if g.trace != nil {
				g.trace.Add(obs.Event{
					Kind:   obs.EvCompatClass,
					Groups: groupInts(class),
				})
			}
			if g.set.Heuristics {
				ok, err := g.heuristic1(class, "compat class")
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				var err2 error
				class, err2 = g.heuristic2(class)
				if err2 != nil {
					return nil, err2
				}
				if len(class) < 2 {
					continue
				}
				classSpecs, err := g.algorithm1(class)
				if err != nil {
					return nil, err
				}
				specs = append(specs, classSpecs...)
			} else {
				// Without heuristics: one candidate covering the whole
				// class, as in the paper's "no heuristics" experiments.
				s, err := buildSpec(g.m, class)
				if err != nil {
					continue
				}
				specs = append(specs, s)
			}
		}
	}
	if g.set.Heuristics {
		specs = g.containmentPrune(specs)
	}
	if g.set.MaxCandidates > 0 && len(specs) > g.set.MaxCandidates {
		// Keep the candidates with the largest potential contribution.
		sort.Slice(specs, func(i, j int) bool {
			return potentialOf(g, specs[i]) > potentialOf(g, specs[j])
		})
		specs = specs[:g.set.MaxCandidates]
	}
	return specs, nil
}

func potentialOf(g *generator, s *spec) float64 {
	sum := 0.0
	for _, cid := range s.consumers {
		if lo, err := g.lowerOf(cid); err == nil {
			sum += lo
		}
	}
	return sum
}

// containmentPrune applies Heuristic 4 (§4.3.4): a candidate contained in
// another (tables a subset, every consumer a descendant of a container
// consumer) is discarded unless its result is meaningfully smaller.
func (g *generator) containmentPrune(specs []*spec) []*spec {
	// Order by estimated bytes descending so large contained candidates go
	// first and small containers survive to prune them.
	sort.Slice(specs, func(i, j int) bool { return specs[i].bytes > specs[j].bytes })
	discarded := make([]bool, len(specs))
	closures := make(map[memo.GroupID]map[memo.GroupID]bool)
	closureOf := func(gid memo.GroupID) map[memo.GroupID]bool {
		if c, ok := closures[gid]; ok {
			return c
		}
		c := g.m.DescendantClosure(gid)
		closures[gid] = c
		return c
	}
	contained := func(c, p *spec) bool {
		if !tableSubset(c.tables, p.tables) {
			return false
		}
		for _, cc := range c.consumers {
			found := false
			for _, pc := range p.consumers {
				if closureOf(pc)[cc] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for i, c := range specs {
		for j, p := range specs {
			if i == j || discarded[j] {
				continue
			}
			if contained(c, p) && c.bytes > g.set.Beta*p.bytes {
				discarded[i] = true
				g.stats.PrunedH4++
				if g.trace != nil {
					g.trace.Add(obs.Event{
						Kind:   obs.EvH4,
						Label:  c.label(),
						Groups: groupInts(c.consumers),
						Pruned: true,
						Reason: fmt.Sprintf("contained in %s and not meaningfully smaller", p.label()),
						Values: map[string]float64{
							"bytes":           c.bytes,
							"container_bytes": p.bytes,
							"ratio":           c.bytes / p.bytes,
							"beta":            g.set.Beta,
						},
					})
				}
				break
			}
		}
	}
	var out []*spec
	for i, s := range specs {
		if !discarded[i] {
			out = append(out, s)
		}
	}
	return out
}

func tableSubset(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, t := range b {
		set[t] = true
	}
	for _, t := range a {
		if !set[t] {
			return false
		}
	}
	return true
}

// finalize materializes surviving specs as memo groups and opt.Candidates.
// TestHookMutateCandidate, when non-nil, is invoked on every finalized
// candidate after its substitutes have been validated. It exists so the
// differential harness can deliberately corrupt a candidate (e.g. drop a
// consumer's residual predicate, turning it into a wrong covering
// subexpression) and prove the oracle catches the resulting wrong results.
// Never set outside tests.
var TestHookMutateCandidate func(*opt.Candidate)

func (g *generator) finalize(specs []*spec) ([]*opt.Candidate, error) {
	var cands []*opt.Candidate
	for i, s := range specs {
		blk := s.block()
		exprGroup, err := g.m.AddBlock(blk, -2-i)
		if err != nil {
			return nil, fmt.Errorf("materializing candidate %d: %w", i, err)
		}
		eg := g.m.Group(exprGroup)
		cand := &opt.Candidate{
			ID:        i,
			ExprGroup: exprGroup,
			SpoolCols: eg.OutCols,
			Subs:      make(map[memo.GroupID]*opt.Substitute, len(s.consumers)),
			Stmts:     make(map[int]bool),
			Rows:      eg.Rows,
			Bytes:     eg.Rows * eg.RowSize,
			Tables:    s.tables,
			Grouped:   s.grouped,
			Label:     s.label(),
			SpecKey:   s.cacheKey(),
		}
		for _, cid := range s.sortedConsumers() {
			sub, err := s.substituteFor(cid)
			if err != nil {
				return nil, fmt.Errorf("substitute for consumer G%d of candidate %d: %w", cid, i, err)
			}
			if err := validateSub(sub, eg.OutCols); err != nil {
				return nil, fmt.Errorf("candidate %d consumer G%d: %w", i, cid, err)
			}
			cand.Consumers = append(cand.Consumers, cid)
			cand.Subs[cid] = sub
			cand.Stmts[g.m.Group(cid).StmtIdx] = true
		}
		if g.trace != nil {
			g.trace.Add(obs.Event{
				Kind:   obs.EvCandidate,
				Label:  fmt.Sprintf("CSE%d: %s", cand.ID, cand.Label),
				Groups: groupInts(cand.Consumers),
				Values: map[string]float64{"rows": cand.Rows, "bytes": cand.Bytes},
			})
		}
		if TestHookMutateCandidate != nil {
			TestHookMutateCandidate(cand)
		}
		cands = append(cands, cand)
	}
	return cands, nil
}

// validateSub checks that everything the substitute reads exists in the
// spool layout (re-aggregation outputs are produced by the substitute
// itself and are exempt).
func validateSub(sub *opt.Substitute, spoolCols []scalar.ColID) error {
	avail := scalar.MakeColSet(spoolCols...)
	if sub.Residual != nil && !sub.Residual.Cols().SubsetOf(avail) {
		return fmt.Errorf("residual references columns outside the spool")
	}
	produced := avail.Copy()
	for _, gc := range sub.GroupCols {
		if !avail.Contains(gc) {
			return fmt.Errorf("re-aggregation group column @%d not in spool", gc)
		}
	}
	for _, a := range sub.Aggs {
		if a.Arg != nil && !a.Arg.Cols().SubsetOf(avail) {
			return fmt.Errorf("re-aggregation argument references columns outside the spool")
		}
		produced.Add(a.Out)
	}
	for _, rn := range sub.Renames {
		if !produced.Contains(rn.From) {
			return fmt.Errorf("rename source @%d not available", rn.From)
		}
	}
	return nil
}
