package core_test

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// searchStats runs Example 1's batch under one strategy/budget configuration
// with heuristics and subset pruning off (maximizing the search's work) and
// returns the output.
func searchStats(t *testing.T, strategy core.SearchStrategy, budget int, tweak func(*core.Settings)) *core.Output {
	t.Helper()
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	s := core.DefaultSettings()
	s.SearchStrategy = strategy
	if budget > 0 {
		s.MaxCSEOptimizations = budget
	}
	if tweak != nil {
		tweak(&s)
	}
	out, err := core.Optimize(m, s)
	if err != nil {
		t.Fatalf("strategy %s budget %d: %v", strategy, budget, err)
	}
	return out
}

// TestSearchBudgetRespected: with MaxCSEOptimizations of 1 and 2 — tight
// enough that every strategy must stop mid-search — the optimizer-call count
// never exceeds the budget and a valid plan is always returned (the bug
// class the PR 5 pruneCombos fix addressed).
func TestSearchBudgetRespected(t *testing.T) {
	for _, strategy := range []core.SearchStrategy{core.SearchAuto, core.SearchLattice, core.SearchGreedy} {
		for _, budget := range []int{1, 2} {
			out := searchStats(t, strategy, budget, func(s *core.Settings) {
				s.Heuristics = false
				s.SubsetPruning = false
			})
			if out.Result == nil {
				t.Fatalf("strategy %s budget %d: no plan returned", strategy, budget)
			}
			if out.Stats.CSEOptimizations > budget {
				t.Errorf("strategy %s: %d optimizer calls exceed budget %d",
					strategy, out.Stats.CSEOptimizations, budget)
			}
			if out.Stats.FinalCost > out.Stats.BaseCost {
				t.Errorf("strategy %s budget %d: final cost %.2f above baseline %.2f",
					strategy, budget, out.Stats.FinalCost, out.Stats.BaseCost)
			}
			if out.Stats.FinalCost <= 0 {
				t.Errorf("strategy %s budget %d: implausible final cost %.2f",
					strategy, budget, out.Stats.FinalCost)
			}
		}
	}
}

// TestGreedyVsLattice: the exhaustive lattice is optimal over the candidate
// subsets, so the greedy search can never beat it; both must stay at or
// below the no-CSE baseline, and the stats must record the resolved
// strategy.
func TestGreedyVsLattice(t *testing.T) {
	lattice := searchStats(t, core.SearchLattice, 0, nil)
	greedy := searchStats(t, core.SearchGreedy, 0, nil)
	if lattice.Stats.SearchStrategy != "lattice" {
		t.Errorf("lattice run recorded strategy %q", lattice.Stats.SearchStrategy)
	}
	if greedy.Stats.SearchStrategy != "greedy" {
		t.Errorf("greedy run recorded strategy %q", greedy.Stats.SearchStrategy)
	}
	const eps = 1e-6
	if greedy.Stats.FinalCost < lattice.Stats.FinalCost*(1-eps) {
		t.Errorf("greedy cost %.4f beats the exhaustive lattice %.4f — lattice is not optimal?",
			greedy.Stats.FinalCost, lattice.Stats.FinalCost)
	}
	for _, out := range []*core.Output{lattice, greedy} {
		if out.Stats.FinalCost > out.Stats.BaseCost*(1+eps) {
			t.Errorf("strategy %s: final cost %.4f above baseline %.4f",
				out.Stats.SearchStrategy, out.Stats.FinalCost, out.Stats.BaseCost)
		}
	}
	// On Example 1's small candidate set greedy finds the same optimum.
	if greedy.Stats.FinalCost > lattice.Stats.FinalCost*(1+eps) {
		t.Logf("note: greedy cost %.4f > lattice optimum %.4f on Example 1",
			greedy.Stats.FinalCost, lattice.Stats.FinalCost)
	}
}

// TestAutoResolvesToLatticeOnSmallSets: Example 1's candidate count is far
// below the lattice bound, so auto must pick the lattice and match it
// exactly.
func TestAutoResolvesToLatticeOnSmallSets(t *testing.T) {
	auto := searchStats(t, core.SearchAuto, 0, nil)
	lattice := searchStats(t, core.SearchLattice, 0, nil)
	if auto.Stats.SearchStrategy != "lattice" {
		t.Errorf("auto resolved to %q on %d candidates, want lattice",
			auto.Stats.SearchStrategy, auto.Stats.Candidates)
	}
	if auto.Stats.FinalCost != lattice.Stats.FinalCost || auto.Stats.CSEOptimizations != lattice.Stats.CSEOptimizations {
		t.Errorf("auto (cost %.4f, %d opts) differs from forced lattice (cost %.4f, %d opts)",
			auto.Stats.FinalCost, auto.Stats.CSEOptimizations,
			lattice.Stats.FinalCost, lattice.Stats.CSEOptimizations)
	}
}

// TestGreedyTraceOrdering pins the greedy search's trace shape — and, as the
// regression for the old keyOf in-place sort, that every Enabled/Used slice
// recorded in trace events is its own sorted copy, never reordered after the
// fact by later key computations.
func TestGreedyTraceOrdering(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	s := core.DefaultSettings()
	s.SearchStrategy = core.SearchGreedy
	s.Heuristics = false
	tr := obs.NewTrace()
	out, err := core.OptimizeTraced(m, s, tr)
	if err != nil {
		t.Fatal(err)
	}
	subsetEvents := tr.OfKind(obs.EvSubsetOpt)
	if len(subsetEvents) != out.Stats.CSEOptimizations {
		t.Fatalf("subset-opt events = %d, Stats.CSEOptimizations = %d",
			len(subsetEvents), out.Stats.CSEOptimizations)
	}
	if len(subsetEvents) == 0 {
		t.Fatal("greedy run recorded no subset-opt events")
	}
	// The seed is the all-enabled optimization: candidate IDs 0..n-1 in
	// ascending order.
	first := subsetEvents[0]
	if len(first.Enabled) != out.Stats.Candidates {
		t.Errorf("seed enabled %v, want all %d candidates", first.Enabled, out.Stats.Candidates)
	}
	for _, ev := range subsetEvents {
		if !sort.IntsAreSorted(ev.Enabled) {
			t.Errorf("subset-opt Enabled %v not sorted ascending", ev.Enabled)
		}
		if !sort.IntsAreSorted(ev.Used) {
			t.Errorf("subset-opt Used %v not sorted ascending", ev.Used)
		}
	}
	moves := tr.OfKind(obs.EvGreedyMove)
	if len(moves) == 0 {
		t.Fatal("greedy run recorded no greedy-move events")
	}
	if moves[0].Values["round"] != 0 {
		t.Errorf("first greedy-move is not the round-0 seed: %+v", moves[0])
	}
	lastCost := moves[0].Values["cost"]
	for i, mv := range moves[1:] {
		if !sort.IntsAreSorted(mv.Enabled) {
			t.Errorf("greedy-move Enabled %v not sorted ascending", mv.Enabled)
		}
		if mv.Values["cost"] >= lastCost {
			t.Errorf("committed move %d did not improve cost: %.4f -> %.4f",
				i+1, lastCost, mv.Values["cost"])
		}
		lastCost = mv.Values["cost"]
	}
	if lastCost != out.Stats.FinalCost && out.Stats.FinalCost < out.Stats.BaseCost {
		// The last committed state is the best found; when the search beat
		// the baseline the stats must agree with the trace.
		t.Errorf("last greedy-move cost %.4f, Stats.FinalCost %.4f", lastCost, out.Stats.FinalCost)
	}
}
