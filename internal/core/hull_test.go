package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func rng(col scalar.ColID, lo, hi int64) *scalar.Expr {
	return scalar.And(
		scalar.Cmp(scalar.OpGt, scalar.Col(col), scalar.ConstInt(lo)),
		scalar.Cmp(scalar.OpLt, scalar.Col(col), scalar.ConstInt(hi)),
	)
}

// TestHullSimplifyPaperE5 is the paper's E5 simplification verbatim:
// (0,20) ∪ (2,24) ∪ (5,25) on c_nationkey → (0,25).
func TestHullSimplifyPaperE5(t *testing.T) {
	or := scalar.Or(rng(1, 0, 20), rng(1, 2, 24), rng(1, 5, 25))
	h := hullSimplify(or)
	if h == nil {
		t.Fatal("hull degenerated")
	}
	got := scalar.Format(h, nil)
	want := "@1 > 0 AND @1 < 25"
	if got != want {
		t.Errorf("hull = %q, want %q", got, want)
	}
}

func TestHullSimplifyMultiColumn(t *testing.T) {
	// (a<30 AND b>0 AND b<20) OR (a<40 AND b>3 AND b<24) → a<40 AND b>0 AND b<24.
	d1 := scalar.And(scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(30)), rng(2, 0, 20))
	d2 := scalar.And(scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(40)), rng(2, 3, 24))
	h := hullSimplify(scalar.Or(d1, d2))
	if h == nil {
		t.Fatal("hull degenerated")
	}
	got := scalar.Format(h, nil)
	if got != "@1 < 40 AND @2 > 0 AND @2 < 24" {
		t.Errorf("hull = %q", got)
	}
}

func TestHullDropsPartiallyPresentColumns(t *testing.T) {
	// b constrained in only one disjunct: only a's hull survives.
	d1 := scalar.And(scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(10)), rng(2, 0, 5))
	d2 := scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(20))
	h := hullSimplify(scalar.Or(d1, d2))
	if got := scalar.Format(h, nil); got != "@1 < 20" {
		t.Errorf("hull = %q", got)
	}
}

func TestHullDegeneratesToNil(t *testing.T) {
	// a < 10 OR a > 15: no common bound survives.
	or := scalar.Or(
		scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(10)),
		scalar.Cmp(scalar.OpGt, scalar.Col(1), scalar.ConstInt(15)),
	)
	if h := hullSimplify(or); h != nil {
		t.Errorf("expected degenerate hull, got %s", scalar.Format(h, nil))
	}
}

func TestHullRejectsNonRangeDisjuncts(t *testing.T) {
	// A LIKE conjunct is not hull-able: the original OR is kept.
	or := scalar.Or(
		rng(1, 0, 10),
		scalar.Like(scalar.Col(2), scalar.ConstString("x%")),
	)
	if h := hullSimplify(or); h != or {
		t.Error("non-range disjuncts must keep the original predicate")
	}
	// Column = column comparisons are not hull-able either.
	or2 := scalar.Or(rng(1, 0, 10), scalar.Eq(scalar.Col(1), scalar.Col(2)))
	if h := hullSimplify(or2); h != or2 {
		t.Error("col=col disjuncts must keep the original predicate")
	}
}

func TestHullEqualityPinsBothEnds(t *testing.T) {
	// a = 5 OR a = 9 → a >= 5 AND a <= 9.
	or := scalar.Or(
		scalar.Eq(scalar.Col(1), scalar.ConstInt(5)),
		scalar.Eq(scalar.Col(1), scalar.ConstInt(9)),
	)
	if got := scalar.Format(hullSimplify(or), nil); got != "@1 >= 5 AND @1 <= 9" {
		t.Errorf("hull = %q", got)
	}
}

// TestHullIsSoundOverApproximation: every row satisfying the OR satisfies
// the hull (checked over a small grid).
func TestHullIsSoundOverApproximation(t *testing.T) {
	or := scalar.Or(rng(1, 0, 20), rng(1, 2, 24), rng(1, 5, 25))
	h := hullSimplify(or)
	layout := map[scalar.ColID]int{1: 0}
	for v := int64(-5); v <= 30; v++ {
		row := sqltypes.Row{sqltypes.NewInt(v)}
		orHolds, err := scalar.EvalPredicate(or, layout, row)
		if err != nil {
			t.Fatal(err)
		}
		hullHolds, err := scalar.EvalPredicate(h, layout, row)
		if err != nil {
			t.Fatal(err)
		}
		if orHolds && !hullHolds {
			t.Fatalf("hull lost row %d covered by the OR", v)
		}
	}
}

// TestE5LabelMatchesPaperHull: end-to-end, the surviving Example 1 candidate
// now shows the paper's exact hull predicate.
func TestE5LabelMatchesPaperHull(t *testing.T) {
	cat := testCatalogWB(t)
	m := whiteboxMemo2(t, cat, example1WB)
	out, err := Optimize(m, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.CandidateLabels) != 1 {
		t.Fatalf("labels = %v", out.Stats.CandidateLabels)
	}
	label := out.Stats.CandidateLabels[0]
	if want := "customer.c_nationkey > 0 AND customer.c_nationkey < 25"; !containsStr(label, want) {
		t.Errorf("E5 label %q missing the paper's hull %q", label, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

const example1WB = `
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment;
select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey;
select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey;
`

func testCatalogWB(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: 0.01, Seed: 7}, cat, st); err != nil {
		t.Fatal(err)
	}
	return cat
}

func whiteboxMemo2(t testing.TB, cat *catalog.Catalog, sql string) *memo.Memo {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
