package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/opt"
	"repro/internal/scalar"
)

// spec is a candidate covering subexpression under construction, before it
// is materialized into memo groups. The first consumer's column space is the
// candidate's canonical space; all other consumers are aligned to it through
// base keys. A spec carries enough information to estimate C_E bounds, C_W,
// and C_R, which is all the pruning heuristics need (§4.3) — the expression
// is inserted into the memo only for candidates that survive pruning.
type spec struct {
	consumers []memo.GroupID
	m         *memo.Memo

	canon   *memo.Group
	canonCM *colMapper
	mappers map[memo.GroupID]*colMapper

	equiv         *baseEquiv     // intersected equivalence classes (step 1)
	joinConjuncts []*scalar.Expr // canonical-space equijoin predicates
	shared        []*scalar.Expr // conjuncts common to every consumer, ANDed into the CSE
	covering      *scalar.Expr   // OR of per-consumer remainders (step 3); nil = TRUE
	residuals     map[memo.GroupID]*scalar.Expr

	grouped   bool
	groupCols []scalar.ColID   // step 4, canonical space
	aggs      []logical.AggDef // step 4: union of consumer aggregates
	aggOutFor map[string]scalar.ColID

	outCols []scalar.ColID // step 5
	rows    float64
	bytes   float64

	tables []string
}

// buildSpec runs the §4.2 construction for a set of join-compatible
// consumers with a common table signature.
func buildSpec(m *memo.Memo, consumers []memo.GroupID) (*spec, error) {
	if len(consumers) == 0 {
		return nil, fmt.Errorf("buildSpec with no consumers")
	}
	md := m.Md
	s := &spec{
		consumers: append([]memo.GroupID(nil), consumers...),
		m:         m,
		mappers:   make(map[memo.GroupID]*colMapper, len(consumers)),
		residuals: make(map[memo.GroupID]*scalar.Expr, len(consumers)),
		aggOutFor: make(map[string]scalar.ColID),
	}
	s.canon = m.Group(consumers[0])
	s.grouped = s.canon.Grouped
	s.tables = append([]string(nil), s.canon.Sig.Tables...)

	var err error
	s.canonCM, err = newColMapper(md, s.canon)
	if err != nil {
		return nil, err
	}
	s.mappers[consumers[0]] = s.canonCM
	for _, cid := range consumers[1:] {
		cm, err := newColMapper(md, m.Group(cid))
		if err != nil {
			return nil, err
		}
		s.mappers[cid] = cm
	}

	// Step 1: intersect equivalence classes and derive the join predicate.
	s.equiv = equivOf(md, s.canon)
	for _, cid := range consumers[1:] {
		s.equiv = intersectEquiv(s.equiv, equivOf(md, m.Group(cid)))
	}
	for _, class := range s.equiv.classes() {
		first, ok := s.canonCM.colFor(class[0])
		if !ok {
			continue
		}
		for _, k := range class[1:] {
			c, ok := s.canonCM.colFor(k)
			if !ok {
				continue
			}
			s.joinConjuncts = append(s.joinConjuncts, scalar.Eq(scalar.Col(first), scalar.Col(c)))
		}
	}

	// Steps 2–3: simplify each consumer's predicate by dropping conjuncts
	// implied by the join predicate, factor out conjuncts common to every
	// consumer (they apply to the CSE as plain AND conditions, like the
	// shared o_orderdate filter in the paper's E5), and OR the remainders
	// into the covering predicate. Each consumer's compensation residual is
	// its own remainder.
	simplified := make(map[memo.GroupID][]*scalar.Expr, len(consumers))
	counts := make(map[string]int)
	var sharedOrder []string
	sharedExpr := make(map[string]*scalar.Expr)
	for _, cid := range consumers {
		conj, err := s.simplifiedConjuncts(m.Group(cid), s.mappers[cid])
		if err != nil {
			return nil, err
		}
		simplified[cid] = conj
		seen := make(map[string]bool)
		for _, c := range conj {
			if c.HasSubquery() {
				// Subquery comparisons are evaluated per statement at
				// execution time; a shared spool can materialize before a
				// later statement's subquery exists, so such conjuncts may
				// never move into the covering expression — they stay in
				// the owning consumer's compensation residual.
				continue
			}
			fp := c.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			if counts[fp] == 0 {
				sharedOrder = append(sharedOrder, fp)
				sharedExpr[fp] = c
			}
			counts[fp]++
		}
	}
	isShared := make(map[string]bool)
	for _, fp := range sharedOrder {
		if counts[fp] == len(consumers) {
			isShared[fp] = true
			s.shared = append(s.shared, sharedExpr[fp])
		}
	}
	anyTrue := false
	var disjuncts []*scalar.Expr
	for _, cid := range consumers {
		var rem, coverable []*scalar.Expr
		for _, c := range simplified[cid] {
			if isShared[c.Fingerprint()] {
				continue
			}
			rem = append(rem, c)
			if !c.HasSubquery() {
				coverable = append(coverable, c)
			}
		}
		s.residuals[cid] = scalar.And(rem...)
		cov := scalar.And(coverable...)
		if scalar.IsTrue(cov) {
			anyTrue = true
		} else {
			disjuncts = append(disjuncts, cov)
		}
	}
	if !anyTrue && len(disjuncts) > 0 {
		s.covering = scalar.Or(disjuncts...)
		// Hull-simplify when it retains some constraint (the paper's E5
		// shows the hull form); a degenerate TRUE hull would unfilter the
		// spool entirely, so keep the OR then.
		if h := hullSimplify(s.covering); h != nil {
			s.covering = h
		}
	}
	// Columns every compensation residual needs — the spool must carry them
	// whether or not the (possibly hull-simplified) covering references them.
	var residualCols scalar.ColSet
	for _, res := range s.residuals {
		residualCols.UnionWith(res.Cols())
	}

	// Step 4: grouping columns and aggregate expressions.
	if s.grouped {
		var gset scalar.ColSet
		for _, cid := range consumers {
			g := m.Group(cid)
			cm := s.mappers[cid]
			for _, gc := range g.GroupCols {
				mapped, err := mapCol(gc, cm, s.canonCM)
				if err != nil {
					return nil, err
				}
				gset.Add(mapped)
			}
			for _, a := range g.Aggs {
				if _, err := s.addAgg(a, cm); err != nil {
					return nil, err
				}
			}
		}
		if s.covering != nil {
			gset.UnionWith(s.covering.Cols())
		}
		gset.UnionWith(residualCols)
		s.groupCols = gset.Ordered()
	}

	// Step 5: output columns.
	var out scalar.ColSet
	if s.grouped {
		for _, gc := range s.groupCols {
			out.Add(gc)
		}
		for _, a := range s.aggs {
			out.Add(a.Out)
		}
	} else {
		for _, cid := range consumers {
			g := m.Group(cid)
			cm := s.mappers[cid]
			for _, c := range g.OutCols {
				mapped, err := mapCol(c, cm, s.canonCM)
				if err != nil {
					return nil, err
				}
				out.Add(mapped)
			}
		}
		if s.covering != nil {
			out.UnionWith(s.covering.Cols())
		}
		out.UnionWith(residualCols)
	}
	s.outCols = out.Ordered()

	// Size estimates.
	est := &memo.Estimator{Md: md}
	joinRows := est.JoinRows(s.canonRels(), s.allConjuncts())
	if s.grouped {
		s.rows = est.GroupRows(joinRows, s.groupCols)
	} else {
		s.rows = joinRows
	}
	s.bytes = s.rows * est.RowWidth(s.outCols)
	return s, nil
}

// canonRels returns the canonical consumer's relation IDs.
func (s *spec) canonRels() []logical.RelID {
	var out []logical.RelID
	for rid := 0; rid < s.m.Md.NumRels(); rid++ {
		if s.canon.Rels.Contains(logical.RelID(rid)) {
			out = append(out, logical.RelID(rid))
		}
	}
	return out
}

// simplifiedConjuncts drops a consumer's conjuncts implied by the
// intersected join predicate (step 2) and translates the rest into the
// canonical space.
func (s *spec) simplifiedConjuncts(g *memo.Group, cm *colMapper) ([]*scalar.Expr, error) {
	var kept []*scalar.Expr
	for _, c := range g.Conjuncts {
		if a, b, ok := c.IsColEqCol(); ok {
			ka, okA := cm.baseOf(a)
			kb, okB := cm.baseOf(b)
			if okA && okB && s.equiv.equal(ka, kb) {
				continue // implied by the CSE join predicate
			}
		}
		mapped, err := translate(c, cm, s.canonCM)
		if err != nil {
			return nil, err
		}
		kept = append(kept, mapped)
	}
	return kept, nil
}

// addAgg registers a consumer aggregate in the CSE (deduplicating by the
// translated fingerprint) and returns the CSE output column holding it.
func (s *spec) addAgg(a logical.AggDef, cm *colMapper) (scalar.ColID, error) {
	arg, err := translate(a.Arg, cm, s.canonCM)
	if err != nil {
		return 0, err
	}
	def := logical.AggDef{Kind: a.Kind, Arg: arg}
	fp := def.Fingerprint()
	if out, ok := s.aggOutFor[fp]; ok {
		return out, nil
	}
	var out scalar.ColID
	if cm == s.canonCM {
		// The canonical consumer's own output column doubles as the CSE's.
		out = a.Out
	} else {
		out = s.m.Md.AddSynthesized("cse_"+def.String(), logical.InferKind(s.m.Md, scalar.Agg(a.Kind, arg)))
	}
	def.Out = out
	s.aggs = append(s.aggs, def)
	s.aggOutFor[fp] = out
	return out, nil
}

func mapCol(c scalar.ColID, from, to *colMapper) (scalar.ColID, error) {
	k, ok := from.baseOf(c)
	if !ok {
		return 0, fmt.Errorf("column @%d is synthesized and cannot be mapped", c)
	}
	mapped, ok := to.colFor(k)
	if !ok {
		return 0, fmt.Errorf("no instance of %q in target space", k.table)
	}
	return mapped, nil
}

// substituteFor builds the §5.1 view-matching substitute for one consumer:
// residual filter + optional re-aggregation + renames into consumer space.
func (s *spec) substituteFor(cid memo.GroupID) (*opt.Substitute, error) {
	g := s.m.Group(cid)
	cm := s.mappers[cid]
	sub := &opt.Substitute{}

	res := s.residuals[cid]
	if !scalar.IsTrue(res) {
		// If the covering predicate is exactly this consumer's residual,
		// the spool already applied it.
		if s.covering == nil || res.Fingerprint() != s.covering.Fingerprint() {
			sub.Residual = res
		}
	}

	if s.grouped {
		// Map the consumer's grouping columns into CSE space.
		mappedGroup := make([]scalar.ColID, len(g.GroupCols))
		var mappedSet scalar.ColSet
		for i, gc := range g.GroupCols {
			mc, err := mapCol(gc, cm, s.canonCM)
			if err != nil {
				return nil, err
			}
			mappedGroup[i] = mc
			mappedSet.Add(mc)
		}
		cseSet := scalar.MakeColSet(s.groupCols...)
		needReagg := !mappedSet.Equals(cseSet)

		// Locate each consumer aggregate's CSE output column.
		cseOut := make([]scalar.ColID, len(g.Aggs))
		for i, a := range g.Aggs {
			arg, err := translate(a.Arg, cm, s.canonCM)
			if err != nil {
				return nil, err
			}
			fp := logical.AggDef{Kind: a.Kind, Arg: arg}.Fingerprint()
			out, ok := s.aggOutFor[fp]
			if !ok {
				return nil, fmt.Errorf("consumer aggregate %s not covered by CSE", a)
			}
			cseOut[i] = out
		}

		if needReagg {
			sub.GroupCols = scalar.SortColIDs(append([]scalar.ColID(nil), mappedGroup...))
			sub.Aggs = make([]logical.AggDef, len(g.Aggs))
			for i, a := range g.Aggs {
				sub.Aggs[i] = memo.CombineAgg(a, cseOut[i])
			}
		}

		// Renames: consumer output = group cols (consumer space) + agg outs.
		for _, oc := range g.OutCols {
			var from scalar.ColID
			if i := indexOfCol(g.GroupCols, oc); i >= 0 {
				if needReagg {
					// Re-aggregation groups by CSE-space columns.
					from = mappedGroup[i]
				} else {
					from = mappedGroup[i]
				}
			} else if i := indexOfAggOut(g.Aggs, oc); i >= 0 {
				if needReagg {
					from = oc // re-aggregation already produced consumer's column
				} else {
					from = cseOut[i]
				}
			} else {
				return nil, fmt.Errorf("consumer output @%d is neither group column nor aggregate", oc)
			}
			sub.Renames = append(sub.Renames, opt.Rename{From: from, To: oc})
		}
		return sub, nil
	}

	// Ungrouped consumer: rename every output column.
	for _, oc := range g.OutCols {
		from, err := mapCol(oc, cm, s.canonCM)
		if err != nil {
			return nil, err
		}
		sub.Renames = append(sub.Renames, opt.Rename{From: from, To: oc})
	}
	return sub, nil
}

func indexOfCol(cols []scalar.ColID, c scalar.ColID) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}

func indexOfAggOut(aggs []logical.AggDef, c scalar.ColID) int {
	for i, a := range aggs {
		if a.Out == c {
			return i
		}
	}
	return -1
}

// allConjuncts returns the CSE's full predicate set: intersected equijoins,
// shared conjuncts, and the OR'd covering predicate.
func (s *spec) allConjuncts() []*scalar.Expr {
	conj := append([]*scalar.Expr(nil), s.joinConjuncts...)
	conj = append(conj, s.shared...)
	if s.covering != nil {
		conj = append(conj, s.covering)
	}
	return conj
}

// block converts the spec into a logical block, ready for memo insertion.
func (s *spec) block() *logical.Block {
	blk := &logical.Block{
		Rels:      append([]logical.RelID(nil), s.canonRels()...),
		Conjuncts: s.allConjuncts(),
		HasGroup:  s.grouped,
		GroupCols: s.groupCols,
		Aggs:      s.aggs,
	}
	for _, c := range s.outCols {
		blk.Projections = append(blk.Projections, logical.Projection{
			Expr: scalar.Col(c),
			Name: s.m.Md.ColName(c),
		})
	}
	return blk
}

// label renders a SQL-ish description of the candidate.
func (s *spec) label() string {
	var sb strings.Builder
	if s.grouped {
		sb.WriteString("γ")
	}
	sb.WriteString("(")
	sb.WriteString(strings.Join(s.tables, " ⋈ "))
	sb.WriteString(")")
	namer := scalar.FuncNamer(func(c scalar.ColID) string { return s.m.Md.ColName(c) })
	var preds []string
	for _, c := range s.shared {
		preds = append(preds, scalar.Format(c, namer))
	}
	if s.covering != nil {
		preds = append(preds, "("+scalar.Format(s.covering, namer)+")")
	}
	if len(preds) > 0 {
		sb.WriteString(" where ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	// Render the grouping structure: two candidates over the same join and
	// predicates but different grouping columns or aggregates are distinct,
	// and the label is their identity in traces and EXPLAIN output.
	if s.grouped {
		if len(s.groupCols) > 0 {
			var cols []string
			for _, c := range s.groupCols {
				cols = append(cols, s.m.Md.ColName(c))
			}
			sb.WriteString(" group by ")
			sb.WriteString(strings.Join(cols, ", "))
		}
		if len(s.aggs) > 0 {
			var aggs []string
			for _, a := range s.aggs {
				arg := "*"
				if a.Arg != nil {
					arg = scalar.Format(a.Arg, namer)
				}
				aggs = append(aggs, fmt.Sprintf("%s(%s)", a.Kind, arg))
			}
			sb.WriteString(" agg ")
			sb.WriteString(strings.Join(aggs, ", "))
		}
	}
	fmt.Fprintf(&sb, " [%d consumers]", len(s.consumers))
	return sb.String()
}

// cacheKey renders a batch-independent fingerprint of the normalized spec:
// the signature [G; T] plus the canonicalized join, shared, and covering
// predicates, grouping columns, aggregates, and the positional output
// layout. Columns are named in base space (table.ordinal) instead of
// batch-local column IDs, and aggregate outputs by their aggregate's
// base-space rendering, so two batches that construct the same CSE — even
// with different statement counts or orderings — produce the same key. That
// is what lets a cross-batch result cache recognize a spool. Order-sensitive
// components (the output layout) are kept in order, because cached rows are
// positional; order-free components are sorted. An empty key means some
// referenced column has no base-space name, so the spec must not be cached.
func (s *spec) cacheKey() string {
	ok := true
	var aggName func(c scalar.ColID) (string, bool)
	baseName := func(c scalar.ColID) (string, bool) {
		if k, isBase := s.canonCM.baseOf(c); isBase {
			return fmt.Sprintf("%s.%d", k.table, k.ord), true
		}
		return aggName(c)
	}
	namer := scalar.FuncNamer(func(c scalar.ColID) string {
		n, nameOK := baseName(c)
		if !nameOK {
			ok = false
		}
		return n
	})
	aggName = func(c scalar.ColID) (string, bool) {
		for _, a := range s.aggs {
			if a.Out == c {
				if a.Arg == nil {
					return a.Kind.String() + "(*)", true
				}
				return fmt.Sprintf("%s(%s)", a.Kind, scalar.Format(a.Arg, namer)), true
			}
		}
		return "?", false
	}
	sorted := func(exprs []*scalar.Expr) []string {
		out := make([]string, len(exprs))
		for i, e := range exprs {
			out[i] = scalar.Format(e, namer)
		}
		sort.Strings(out)
		return out
	}

	var sb strings.Builder
	if s.grouped {
		sb.WriteString("G")
	}
	fmt.Fprintf(&sb, "[%s]", strings.Join(s.tables, ","))
	fmt.Fprintf(&sb, "|join:%s", strings.Join(sorted(s.joinConjuncts), "&"))
	fmt.Fprintf(&sb, "|shared:%s", strings.Join(sorted(s.shared), "&"))
	switch {
	case s.covering == nil:
		sb.WriteString("|cover:true")
	case s.covering.Op == scalar.OpOr:
		// Disjunct order follows consumer order, which is batch-dependent;
		// sort so reordered batches still hit.
		fmt.Fprintf(&sb, "|cover:%s", strings.Join(sorted(s.covering.Args), " OR "))
	default:
		fmt.Fprintf(&sb, "|cover:%s", scalar.Format(s.covering, namer))
	}
	if s.grouped {
		groups := make([]string, len(s.groupCols))
		for i, c := range s.groupCols {
			var nameOK bool
			groups[i], nameOK = baseName(c)
			if !nameOK {
				ok = false
			}
		}
		sort.Strings(groups)
		fmt.Fprintf(&sb, "|group:%s", strings.Join(groups, ","))
	}
	// Output layout stays positional: a hit serves raw cached rows.
	outs := make([]string, len(s.outCols))
	for i, c := range s.outCols {
		var nameOK bool
		outs[i], nameOK = baseName(c)
		if !nameOK {
			ok = false
		}
	}
	fmt.Fprintf(&sb, "|out:%s", strings.Join(outs, ","))
	if !ok {
		return ""
	}
	return sb.String()
}

// sortedConsumers returns the consumers in deterministic order.
func (s *spec) sortedConsumers() []memo.GroupID {
	out := append([]memo.GroupID(nil), s.consumers...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
