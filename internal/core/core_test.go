package core_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func testCatalog(t testing.TB, sf float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 7}, cat, st); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildMemo(t testing.TB, cat *catalog.Catalog, sql string) *memo.Memo {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatalf("memo: %v", err)
	}
	return m
}

const example1SQL = `
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment;

select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey;

select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey;
`

func TestExample1WithHeuristics(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base cost %.2f, final cost %.2f, candidates %d [%d opts], used %v",
		out.Stats.BaseCost, out.Stats.FinalCost, out.Stats.Candidates,
		out.Stats.CSEOptimizations, out.Stats.UsedCSEs)
	for _, l := range out.Stats.CandidateLabels {
		t.Logf("candidate: %s", l)
	}
	// The paper: with pruning, only E5 — the aggregation over the 3-way
	// join — survives, and it is used in the final plan.
	if out.Stats.Candidates != 1 {
		t.Errorf("candidates = %d, want 1 (E5 only)", out.Stats.Candidates)
	}
	if len(out.Stats.UsedCSEs) != 1 {
		t.Errorf("used CSEs = %v, want exactly one", out.Stats.UsedCSEs)
	}
	if out.Stats.FinalCost >= out.Stats.BaseCost {
		t.Errorf("CSE plan cost %.2f not cheaper than base %.2f", out.Stats.FinalCost, out.Stats.BaseCost)
	}
	if len(out.Stats.CandidateLabels) > 0 && !strings.Contains(out.Stats.CandidateLabels[0], "customer") {
		t.Errorf("surviving candidate should cover customer⋈orders⋈lineitem: %s", out.Stats.CandidateLabels[0])
	}
}

func TestExample1NoHeuristics(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	settings := core.DefaultSettings()
	settings.Heuristics = false
	out, err := core.Optimize(m, settings)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("candidates %d [%d opts], used %v, cost %.2f (base %.2f)",
		out.Stats.Candidates, out.Stats.CSEOptimizations, out.Stats.UsedCSEs,
		out.Stats.FinalCost, out.Stats.BaseCost)
	for _, l := range out.Stats.CandidateLabels {
		t.Logf("candidate: %s", l)
	}
	// Figure 6: five candidates without pruning (E1..E5).
	if out.Stats.Candidates != 5 {
		t.Errorf("candidates = %d, want 5 (Figure 6)", out.Stats.Candidates)
	}
	// Subset-lattice pruning should cut the 31 combinations well down.
	if out.Stats.CSEOptimizations >= 31 {
		t.Errorf("CSE optimizations = %d, want < 31 (Propositions 5.4-5.6)", out.Stats.CSEOptimizations)
	}
	if out.Stats.FinalCost >= out.Stats.BaseCost {
		t.Errorf("CSE plan cost %.2f not cheaper than base %.2f", out.Stats.FinalCost, out.Stats.BaseCost)
	}
}

func TestNoSharingNoCandidates(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, `
select c_nationkey, count(*) as n from customer group by c_nationkey;
select o_orderpriority, sum(o_totalprice) as v from orders group by o_orderpriority;
`)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Candidates != 0 {
		t.Errorf("candidates = %d, want 0 for unrelated queries", out.Stats.Candidates)
	}
	if out.Stats.FinalCost != out.Stats.BaseCost {
		t.Errorf("plan changed despite no sharing opportunities")
	}
}

func TestDescribe(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	desc := out.Describe(m)
	for _, want := range []string{"candidates: 1", "E1:", "consumers:", "* = used"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}

	// No-sharing case.
	m2 := buildMemo(t, cat, "select c_nationkey, count(*) as n from customer group by c_nationkey")
	out2, err := core.Optimize(m2, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.Describe(m2), "no candidate") {
		t.Error("Describe must report the empty case")
	}
}
