package core_test

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/qgen"
)

// TestKnobSweepOnlyChangesSurvival pins the H1–H4 arithmetic against knob
// perturbation: sweeping α (Heuristic 1's cost-fraction threshold), β
// (Heuristic 4's containment ratio), and the Algorithm 1 Δ floor must only
// ever change *which* candidates survive pruning — never produce a plan the
// optimizer costs above the no-CSE baseline, and never change the detected
// signature-set count (detection runs before any heuristic).
func TestKnobSweepOnlyChangesSurvival(t *testing.T) {
	cat := testCatalog(t, 0.01)

	batches := []string{example1SQL}
	for seed := int64(500); seed < 506; seed++ {
		batches = append(batches, qgen.New(qgen.Config{Seed: seed}).Batch().SQL())
	}

	type knobs struct {
		alpha, beta, delta float64
	}
	var sweep []knobs
	for _, a := range []float64{0.05, 0.10, 0.20} {
		for _, b := range []float64{0.80, 0.90, 0.95} {
			for _, d := range []float64{0, 1e4} {
				sweep = append(sweep, knobs{a, b, d})
			}
		}
	}

	for bi, sql := range batches {
		m0 := buildMemo(t, cat, sql)
		base, err := core.Optimize(m0, core.DefaultSettings())
		if err != nil {
			t.Fatalf("batch %d default: %v", bi, err)
		}
		baseCost := base.Stats.BaseCost

		for _, k := range sweep {
			s := core.DefaultSettings()
			s.Alpha, s.Beta, s.MinMergeBenefit = k.alpha, k.beta, k.delta
			m := buildMemo(t, cat, sql)
			out, err := core.Optimize(m, s)
			if err != nil {
				t.Fatalf("batch %d α=%.2f β=%.2f Δ=%g: %v", bi, k.alpha, k.beta, k.delta, err)
			}

			// Plan quality: a knob setting may forgo CSEs but must never
			// accept a plan costed above the no-CSE baseline.
			if out.Stats.FinalCost > out.Stats.BaseCost {
				t.Errorf("batch %d α=%.2f β=%.2f Δ=%g: final cost %.2f exceeds no-CSE cost %.2f",
					bi, k.alpha, k.beta, k.delta, out.Stats.FinalCost, out.Stats.BaseCost)
			}
			// The no-CSE baseline itself is knob-independent.
			if out.Stats.BaseCost != baseCost {
				t.Errorf("batch %d α=%.2f β=%.2f Δ=%g: base cost changed with knobs: %.2f vs %.2f",
					bi, k.alpha, k.beta, k.delta, out.Stats.BaseCost, baseCost)
			}
			// Detection is knob-independent: heuristics only prune after it.
			if out.Stats.SignatureSets != base.Stats.SignatureSets {
				t.Errorf("batch %d α=%.2f β=%.2f Δ=%g: signature sets %d != %d — knobs must not affect detection",
					bi, k.alpha, k.beta, k.delta, out.Stats.SignatureSets, base.Stats.SignatureSets)
			}
			// Tighter knobs at Δ=0, α≥0.10, β≤0.90 can only shrink the
			// default candidate pool when merging is unchanged; in all cases
			// survivors must be a coherent labeled set (no duplicates).
			if dup := firstDuplicate(out.Stats.CandidateLabels); dup != "" {
				t.Errorf("batch %d α=%.2f β=%.2f Δ=%g: duplicate candidate label %q",
					bi, k.alpha, k.beta, k.delta, dup)
			}
		}
	}
}

// TestAlphaMonotone: raising α only raises the H1 bar, so the surviving
// candidate count is non-increasing in α with all other knobs fixed.
func TestAlphaMonotone(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for seed := int64(520); seed < 524; seed++ {
		sql := qgen.New(qgen.Config{Seed: seed}).Batch().SQL()
		prev := -1
		for _, a := range []float64{0.05, 0.10, 0.20, 0.50} {
			s := core.DefaultSettings()
			s.Alpha = a
			out, err := core.Optimize(buildMemo(t, cat, sql), s)
			if err != nil {
				t.Fatalf("seed %d α=%.2f: %v", seed, a, err)
			}
			n := out.Stats.Candidates
			if prev >= 0 && n > prev {
				t.Errorf("seed %d: candidate count rose from %d to %d when α tightened to %.2f",
					seed, prev, n, a)
			}
			prev = n
		}
	}
}

// TestDeltaFloorSuppressesMerges: an absurdly high Δ floor means Algorithm 1
// never merges, so every surviving candidate covers exactly the consumers of
// one trivial spec — and correctness must still hold (cost bounded).
func TestDeltaFloorSuppressesMerges(t *testing.T) {
	cat := testCatalog(t, 0.01)
	for seed := int64(530); seed < 534; seed++ {
		sql := qgen.New(qgen.Config{Seed: seed}).Batch().SQL()
		s := core.DefaultSettings()
		s.MinMergeBenefit = 1e18
		out, err := core.Optimize(buildMemo(t, cat, sql), s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Stats.FinalCost > out.Stats.BaseCost {
			t.Errorf("seed %d: Δ floor produced a worse plan: %.2f > %.2f",
				seed, out.Stats.FinalCost, out.Stats.BaseCost)
		}
	}
}

func firstDuplicate(labels []string) string {
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i]
		}
	}
	return ""
}
