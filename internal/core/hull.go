package core

import (
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// hullSimplify replaces an OR-of-range-conjunctions covering predicate with
// its per-column bounding hull, the simplification visible in the paper's
// E5: the union of (0,20), (5,25), (2,24) on c_nationkey becomes the single
// range (0,25). Over-covering is sound — the spool may contain extra rows;
// every consumer still applies its own compensation residual — and the hull
// is cheaper to evaluate and to reason about (a plain conjunction instead of
// a disjunction).
//
// The rewrite applies only when every conjunct of every disjunct is a
// single-column comparison against a constant; otherwise the original
// predicate is returned unchanged. A column missing from some disjunct is
// unconstrained there, so it contributes no hull bound; if no bound
// survives, the covering collapses to TRUE (nil).
func hullSimplify(covering *scalar.Expr) *scalar.Expr {
	if covering == nil || covering.Op != scalar.OpOr {
		return covering
	}
	type bound struct {
		lo, hi       sqltypes.Datum
		loInc, hiInc bool
		constrained  bool
	}
	// hull[col] accumulates across disjuncts; present tracks per-disjunct
	// participation.
	hull := make(map[scalar.ColID]*bound)
	order := []scalar.ColID{}
	nDisjuncts := len(covering.Args)
	seenIn := make(map[scalar.ColID]int)

	for _, disjunct := range covering.Args {
		// Per-disjunct bounds, in conjunct order so the rebuilt predicate is
		// deterministic.
		local := make(map[scalar.ColID]*bound)
		localOrder := []scalar.ColID{}
		for _, c := range scalar.Conjuncts(disjunct) {
			col, lo, hi, loInc, hiInc, ok := rangeOf(c)
			if !ok {
				return covering // not hull-able
			}
			b := local[col]
			if b == nil {
				b = &bound{}
				local[col] = b
				localOrder = append(localOrder, col)
			}
			if !lo.IsNull() && (b.lo.IsNull() || sqltypes.Compare(lo, b.lo) > 0) {
				b.lo, b.loInc = lo, loInc
			}
			if !hi.IsNull() && (b.hi.IsNull() || sqltypes.Compare(hi, b.hi) < 0) {
				b.hi, b.hiInc = hi, hiInc
			}
			b.constrained = true
		}
		// Fold into the hull: widen bounds; a column absent from this
		// disjunct becomes unconstrained overall.
		for _, col := range localOrder {
			lb := local[col]
			hb := hull[col]
			if hb == nil {
				hb = &bound{lo: lb.lo, hi: lb.hi, loInc: lb.loInc, hiInc: lb.hiInc, constrained: true}
				hull[col] = hb
				order = append(order, col)
			} else {
				if hb.lo.IsNull() || lb.lo.IsNull() {
					hb.lo = sqltypes.Null
				} else if sqltypes.Compare(lb.lo, hb.lo) < 0 || (sqltypes.Compare(lb.lo, hb.lo) == 0 && lb.loInc) {
					hb.lo, hb.loInc = lb.lo, lb.loInc
				}
				if hb.hi.IsNull() || lb.hi.IsNull() {
					hb.hi = sqltypes.Null
				} else if sqltypes.Compare(lb.hi, hb.hi) > 0 || (sqltypes.Compare(lb.hi, hb.hi) == 0 && lb.hiInc) {
					hb.hi, hb.hiInc = lb.hi, lb.hiInc
				}
			}
			seenIn[col]++
		}
	}

	var conj []*scalar.Expr
	for _, col := range order {
		if seenIn[col] != nDisjuncts {
			continue // unconstrained in some disjunct
		}
		b := hull[col]
		if !b.lo.IsNull() {
			op := scalar.OpGt
			if b.loInc {
				op = scalar.OpGe
			}
			conj = append(conj, scalar.Cmp(op, scalar.Col(col), scalar.Const(b.lo)))
		}
		if !b.hi.IsNull() {
			op := scalar.OpLt
			if b.hiInc {
				op = scalar.OpLe
			}
			conj = append(conj, scalar.Cmp(op, scalar.Col(col), scalar.Const(b.hi)))
		}
	}
	if len(conj) == 0 {
		return nil // hull degenerated to TRUE; caller keeps the OR
	}
	return scalar.And(conj...)
}

// rangeOf decodes a single-column comparison against a constant into range
// bounds. Equality pins both ends.
func rangeOf(c *scalar.Expr) (col scalar.ColID, lo, hi sqltypes.Datum, loInc, hiInc, ok bool) {
	if len(c.Args) != 2 {
		return 0, sqltypes.Null, sqltypes.Null, false, false, false
	}
	l, r := c.Args[0], c.Args[1]
	op := c.Op
	if l.Op == scalar.OpConst && r.Op == scalar.OpCol {
		l, r = r, l
		switch op {
		case scalar.OpLt:
			op = scalar.OpGt
		case scalar.OpLe:
			op = scalar.OpGe
		case scalar.OpGt:
			op = scalar.OpLt
		case scalar.OpGe:
			op = scalar.OpLe
		}
	}
	if l.Op != scalar.OpCol || r.Op != scalar.OpConst || r.Const.IsNull() {
		return 0, sqltypes.Null, sqltypes.Null, false, false, false
	}
	v := r.Const
	switch op {
	case scalar.OpEq:
		return l.Col, v, v, true, true, true
	case scalar.OpLt:
		return l.Col, sqltypes.Null, v, false, false, true
	case scalar.OpLe:
		return l.Col, sqltypes.Null, v, false, true, true
	case scalar.OpGt:
		return l.Col, v, sqltypes.Null, false, false, true
	case scalar.OpGe:
		return l.Col, v, sqltypes.Null, true, false, true
	}
	return 0, sqltypes.Null, sqltypes.Null, false, false, false
}
