package core

import (
	"sort"

	"repro/internal/memo"
	"repro/internal/opt"
	"repro/internal/scalar"
)

// addStackedConsumers implements §5.5: after candidate expressions are
// materialized as memo groups, their subexpressions (join subsets and eager
// partial aggregations, whose signatures were registered on insertion) can
// themselves consume narrower candidates. A wider candidate's expression
// that reads a narrower candidate's spool yields the paper's stacked plan:
// compute E3 = B⋈C once, use it to compute E1 = A⋈B⋈C and E2 = B⋈C⋈D,
// whose results feed the rest of the query.
//
// Candidates are processed narrow-to-wide, and a candidate may only consume
// strictly narrower ones, so stacking is acyclic.
func addStackedConsumers(m *memo.Memo, specs []*spec, cands []*opt.Candidate) {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(cands[order[a]].Tables) < len(cands[order[b]].Tables)
	})

	for _, xi := range order {
		x, xs := cands[xi], specs[xi]
		key := sigKeyOf(xs)
		for yi := range cands {
			y := cands[yi]
			if len(y.Tables) <= len(x.Tables) {
				continue
			}
			stmtKey := -2 - y.ID
			for _, grp := range m.Groups {
				if grp.StmtIdx != stmtKey || !grp.Sig.Valid || grp.Sig.Key() != key {
					continue
				}
				if sub, ok := tryStackedSubstitute(m, xs, grp); ok {
					x.Consumers = append(x.Consumers, grp.ID)
					x.Subs[grp.ID] = sub
					x.StackUsed = true
				}
			}
		}
	}
}

func sigKeyOf(s *spec) string {
	sig := memo.Signature{Valid: true, Grouped: s.grouped, Tables: s.tables}
	return sig.Key()
}

// tryStackedSubstitute checks whether group grp (a subexpression of a wider
// candidate) can be computed from candidate spec xs, and builds the
// substitute if so. The checks mirror view matching:
//
//  1. every equality xs applies must hold in grp (otherwise the spool's join
//     predicate is stronger than grp's and rows would be missing);
//  2. grp's predicate must imply xs's covering predicate (the spool contains
//     at least the rows grp needs);
//  3. grp's residual compensation must be computable from the spool's
//     output columns;
//  4. for grouped candidates, grp's grouping columns must be a subset of the
//     spool's and its aggregates must be covered.
func tryStackedSubstitute(m *memo.Memo, xs *spec, grp *memo.Group) (*opt.Substitute, bool) {
	cm, err := newColMapper(m.Md, grp)
	if err != nil {
		return nil, false
	}
	grEquiv := equivOf(m.Md, grp)
	if !subsetOfEquiv(xs.equiv, grEquiv) {
		return nil, false
	}

	// Translate grp's conjuncts into the candidate's canonical space.
	var mapped []*scalar.Expr
	for _, c := range grp.Conjuncts {
		mc, err := translate(c, cm, xs.canonCM)
		if err != nil {
			return nil, false
		}
		mapped = append(mapped, mc)
	}
	have := make(map[string]bool, len(mapped))
	for _, c := range mapped {
		have[c.Fingerprint()] = true
	}
	// The spool's shared AND conjuncts and covering predicate must both be
	// implied by grp's own predicate, or the spool is missing rows.
	sharedFP := make(map[string]bool, len(xs.shared))
	for _, c := range xs.shared {
		fp := c.Fingerprint()
		sharedFP[fp] = true
		if !have[fp] {
			return nil, false
		}
	}
	if !coveredBy(mapped, xs.covering) {
		return nil, false
	}

	// Compute the residual: conjuncts not implied by the spool's join
	// predicate and not already applied as shared conjuncts, then register
	// the group as a consumer on the spec so the shared substitute builder
	// can run.
	var resParts []*scalar.Expr
	for i, c := range grp.Conjuncts {
		if a, b, ok := c.IsColEqCol(); ok {
			ka, okA := cm.baseOf(a)
			kb, okB := cm.baseOf(b)
			if okA && okB && xs.equiv.equal(ka, kb) {
				continue
			}
		}
		if sharedFP[mapped[i].Fingerprint()] {
			continue
		}
		resParts = append(resParts, mapped[i])
	}
	res := scalar.And(resParts...)
	if res.HasSubquery() {
		// The stacked consumer lives inside another candidate's expression,
		// which may materialize before the subquery's statement runs.
		return nil, false
	}

	xs.mappers[grp.ID] = cm
	xs.residuals[grp.ID] = res
	sub, err := xs.substituteFor(grp.ID)
	if err != nil {
		delete(xs.mappers, grp.ID)
		delete(xs.residuals, grp.ID)
		return nil, false
	}
	if err := validateSub(sub, xs.outCols); err != nil {
		delete(xs.mappers, grp.ID)
		delete(xs.residuals, grp.ID)
		return nil, false
	}
	if xs.grouped {
		// Grouping columns must be a subset of the spool's grouping.
		spoolGC := scalar.MakeColSet(xs.groupCols...)
		for _, gc := range grp.GroupCols {
			mc, err := mapCol(gc, cm, xs.canonCM)
			if err != nil || !spoolGC.Contains(mc) {
				delete(xs.mappers, grp.ID)
				delete(xs.residuals, grp.ID)
				return nil, false
			}
		}
	}
	return sub, true
}

// coveredBy reports whether the conjunct set implies the covering predicate:
// trivially when covering is TRUE, otherwise when some disjunct's conjuncts
// all appear (by fingerprint) in the set.
func coveredBy(conjuncts []*scalar.Expr, covering *scalar.Expr) bool {
	if scalar.IsTrue(covering) {
		return true
	}
	have := make(map[string]bool, len(conjuncts))
	for _, c := range conjuncts {
		have[c.Fingerprint()] = true
	}
	disjuncts := []*scalar.Expr{covering}
	if covering.Op == scalar.OpOr {
		disjuncts = covering.Args
	}
	for _, d := range disjuncts {
		all := true
		for _, c := range scalar.Conjuncts(d) {
			if !have[c.Fingerprint()] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
