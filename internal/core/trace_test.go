package core_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// optimizeTraced runs the traced optimizer over sql and returns the output.
func optimizeTraced(t *testing.T, sf float64, sql string) (*core.Output, *obs.Trace) {
	t.Helper()
	cat := testCatalog(t, sf)
	m := buildMemo(t, cat, sql)
	tr := obs.NewTrace()
	out, err := core.OptimizeTraced(m, core.DefaultSettings(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return out, tr
}

const example5SQL = `
select n_name, sum(l_extendedprice) as s
from nation, region, customer, orders, lineitem
where n_regionkey = r_regionkey and c_nationkey = n_nationkey
  and c_custkey = o_custkey and o_orderkey = l_orderkey and r_regionkey < 3
group by n_name;
select r_name, sum(ps_supplycost) as s
from nation, region, supplier, partsupp
where n_regionkey = r_regionkey and s_nationkey = n_nationkey
  and ps_suppkey = s_suppkey and r_regionkey < 4
group by r_name;
`

// TestTraceH1Prune: the Example 5 fixture (cheap shared nation⋈region join)
// must emit an h1 prune event carrying the α threshold evidence.
func TestTraceH1Prune(t *testing.T) {
	out, tr := optimizeTraced(t, 0.01, example5SQL)
	pruned := 0
	for _, e := range tr.OfKind(obs.EvH1) {
		for _, k := range []string{"sum_lower", "alpha", "cq", "threshold"} {
			if _, ok := e.Values[k]; !ok {
				t.Errorf("h1 event missing value %q: %s", k, e.String())
			}
		}
		if e.Values["alpha"] != 0.10 {
			t.Errorf("h1 alpha = %g, want the paper's 0.10", e.Values["alpha"])
		}
		if got, want := e.Values["threshold"], e.Values["alpha"]*e.Values["cq"]; math.Abs(got-want) > 1e-9 {
			t.Errorf("h1 threshold = %g, want alpha*cq = %g", got, want)
		}
		if e.Pruned {
			pruned++
			if e.Values["sum_lower"] >= e.Values["threshold"] {
				t.Errorf("pruned h1 event with sum_lower >= threshold: %s", e.String())
			}
		}
	}
	if pruned == 0 {
		t.Error("Example 5 must prune at least one unit via Heuristic 1")
	}
	if out.Stats.PrunedH1 != pruned {
		t.Errorf("Stats.PrunedH1 = %d, trace has %d prune events", out.Stats.PrunedH1, pruned)
	}
}

// TestTraceH2Prune: the Example 6 fixture (select * consumer) must emit an h2
// prune event whose threshold matches cr + (upper+cw)/n.
func TestTraceH2Prune(t *testing.T) {
	out, tr := optimizeTraced(t, 0.01, `
select * from customer, orders where c_custkey = o_custkey;
select c_name, c_nationkey, o_totalprice from customer, orders where c_custkey = o_custkey;
`)
	events := tr.OfKind(obs.EvH2)
	if len(events) == 0 {
		t.Fatal("Example 6 must drop the select-* consumer via Heuristic 2")
	}
	for _, e := range events {
		if !e.Pruned {
			t.Errorf("h2 events are recorded only for drops, got kept: %s", e.String())
		}
		want := e.Values["read_cost"] + (e.Values["upper"]+e.Values["write_cost"])/e.Values["consumers"]
		if got := e.Values["threshold"]; math.Abs(got-want) > 1e-9 {
			t.Errorf("h2 threshold = %g, want cr+(upper+cw)/n = %g", got, want)
		}
		if e.Values["upper"] >= e.Values["threshold"] {
			t.Errorf("h2 dropped a consumer whose upper >= threshold: %s", e.String())
		}
	}
	if out.Stats.PrunedH2 != len(events) {
		t.Errorf("Stats.PrunedH2 = %d, trace has %d events", out.Stats.PrunedH2, len(events))
	}
}

// TestTraceH3Drop: the Example 7 fixture (indexed point lookup vs huge range)
// must emit an h3-drop event with a non-positive best Δ.
func TestTraceH3Drop(t *testing.T) {
	out, tr := optimizeTraced(t, 0.02, `
select o_orderkey, sum(l_extendedprice) as v
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate = '1995-01-01'
group by o_orderkey;
select o_orderkey, sum(l_extendedprice) as v
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate > '1995-01-01'
group by o_orderkey;
`)
	drops := tr.OfKind(obs.EvH3Drop)
	if len(drops) == 0 {
		t.Fatal("Example 7 must discard trivial specs via Heuristic 3")
	}
	for _, e := range drops {
		if !e.Pruned {
			t.Errorf("h3-drop event not marked pruned: %s", e.String())
		}
		if e.Values["best_delta"] > 0 {
			t.Errorf("h3-drop with positive Δ benefit %g: %s", e.Values["best_delta"], e.String())
		}
	}
	if out.Stats.PrunedH3 != len(drops) {
		t.Errorf("Stats.PrunedH3 = %d, trace has %d drops", out.Stats.PrunedH3, len(drops))
	}
	// Every executed merge must carry a positive Δ and its cost evidence.
	for _, e := range tr.OfKind(obs.EvH3Merge) {
		if e.Values["delta"] <= 0 {
			t.Errorf("h3-merge with non-positive Δ: %s", e.String())
		}
	}
}

// TestTraceH4Prune: the Example 9 fixture (join contained in its aggregation)
// must emit an h4 prune event with the β containment evidence.
func TestTraceH4Prune(t *testing.T) {
	out, tr := optimizeTraced(t, 0.01, example1SQL)
	events := tr.OfKind(obs.EvH4)
	if len(events) == 0 {
		t.Fatal("Example 9 must discard the contained join via Heuristic 4")
	}
	for _, e := range events {
		if !e.Pruned {
			t.Errorf("h4 events are recorded only for discards, got kept: %s", e.String())
		}
		if e.Values["beta"] != 0.90 {
			t.Errorf("h4 beta = %g, want the paper's 0.90", e.Values["beta"])
		}
		if e.Values["bytes"] <= e.Values["beta"]*e.Values["container_bytes"] {
			t.Errorf("h4 discarded a candidate below the β size threshold: %s", e.String())
		}
	}
	if out.Stats.PrunedH4 != len(events) {
		t.Errorf("Stats.PrunedH4 = %d, trace has %d events", out.Stats.PrunedH4, len(events))
	}
}

// TestTraceEndToEnd: the Example 1 batch produces a full decision trail —
// signature sets, candidates, charge groups, subset reoptimizations matching
// Stats.CSEOptimizations, and a final event consistent with Stats — and the
// whole trace survives a JSON round trip.
func TestTraceEndToEnd(t *testing.T) {
	out, tr := optimizeTraced(t, 0.01, example1SQL)
	if len(tr.OfKind(obs.EvSignatureSet)) == 0 {
		t.Error("no signature-set events recorded")
	}
	if got := len(tr.OfKind(obs.EvCandidate)); got != out.Stats.Candidates {
		t.Errorf("candidate events = %d, Stats.Candidates = %d", got, out.Stats.Candidates)
	}
	if got := len(tr.OfKind(obs.EvCharge)); got != out.Stats.Candidates {
		t.Errorf("charge events = %d, want one per candidate (%d)", got, out.Stats.Candidates)
	}
	if got := len(tr.OfKind(obs.EvSubsetOpt)); got != out.Stats.CSEOptimizations {
		t.Errorf("subset-opt events = %d, Stats.CSEOptimizations = %d", got, out.Stats.CSEOptimizations)
	}
	finals := tr.OfKind(obs.EvFinal)
	if len(finals) != 1 {
		t.Fatalf("final events = %d, want exactly 1", len(finals))
	}
	fe := finals[0]
	if fe.Values["base_cost"] != out.Stats.BaseCost || fe.Values["final_cost"] != out.Stats.FinalCost {
		t.Errorf("final event %v disagrees with Stats (base %.2f final %.2f)",
			fe.Values, out.Stats.BaseCost, out.Stats.FinalCost)
	}
	if len(fe.Used) != len(out.Stats.UsedCSEs) {
		t.Errorf("final event used = %v, Stats.UsedCSEs = %v", fe.Used, out.Stats.UsedCSEs)
	}
	if out.Trace != tr {
		t.Error("Output.Trace must carry the supplied trace")
	}

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace JSON round trip: %v", err)
	}
	if len(events) != tr.Len() {
		t.Errorf("JSON has %d events, trace has %d", len(events), tr.Len())
	}
}

// TestUntracedOptimizeRecordsCounters: the prune counters are maintained even
// without a trace, and Optimize leaves Output.Trace nil.
func TestUntracedOptimizeRecordsCounters(t *testing.T) {
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	out, err := core.Optimize(m, core.DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace != nil {
		t.Error("Optimize must not attach a trace")
	}
	if out.Stats.PrunedH4 == 0 {
		t.Error("PrunedH4 counter must be maintained without tracing")
	}
}
