package core

import (
	"fmt"
	"strings"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
)

// SearchStrategy selects the §5.3 cost-based selection search over candidate
// subsets.
type SearchStrategy string

const (
	// SearchAuto (the zero value) picks the exhaustive lattice for candidate
	// sets small enough to enumerate and the greedy local search beyond that.
	SearchAuto SearchStrategy = "auto"

	// SearchLattice forces the paper's §5.3 subset enumeration with
	// Propositions 5.4–5.6 pruning. Beyond 63 candidates (the mask width)
	// it degrades to greedy.
	SearchLattice SearchStrategy = "lattice"

	// SearchGreedy forces the greedy marginal-gain local search (Volcano-RU
	// style seed plus add/drop moves) regardless of candidate count.
	SearchGreedy SearchStrategy = "greedy"
)

// ParseSearchStrategy validates a strategy name from a flag or shell command.
// The empty string means auto.
func ParseSearchStrategy(s string) (SearchStrategy, error) {
	switch SearchStrategy(s) {
	case "", SearchAuto:
		return SearchAuto, nil
	case SearchLattice:
		return SearchLattice, nil
	case SearchGreedy:
		return SearchGreedy, nil
	}
	return "", fmt.Errorf("unknown search strategy %q (want auto, lattice, or greedy)", s)
}

// resolveSearchStrategy maps the requested strategy and the candidate count
// to the strategy actually run. Auto switches to greedy past the lattice
// enumeration bound; a forced lattice switches only when the candidate
// universe no longer fits the uint64 subset masks.
func resolveSearchStrategy(s SearchStrategy, n int) SearchStrategy {
	switch s {
	case SearchGreedy:
		return SearchGreedy
	case SearchLattice:
		if n > maxMaskCandidates {
			return SearchGreedy
		}
		return SearchLattice
	default:
		if n > maxLatticeCandidates {
			return SearchGreedy
		}
		return SearchLattice
	}
}

// Settings controls the CSE optimization phase.
type Settings struct {
	// EnableCSE turns the whole CSE phase on. Off reproduces the paper's
	// "No CSE" baseline.
	EnableCSE bool

	// Heuristics enables the four pruning heuristics of §4.3 and Algorithm 1
	// merging; when false, one candidate per join-compatible class covering
	// all its consumers is generated (the paper's "no heuristics" columns).
	Heuristics bool

	// Alpha is Heuristic 1's threshold fraction of total query cost
	// (paper: 10%).
	Alpha float64

	// Beta is Heuristic 4's containment size ratio (paper: 90%).
	Beta float64

	// MinMergeBenefit is the Δ floor for Algorithm 1 (§4.3.3): a greedy
	// merge step is taken only when its benefit strictly exceeds this. The
	// paper's formulation is Δ > 0 (the default); raising it makes merging
	// more conservative and is exposed for knob-sweep testing.
	MinMergeBenefit float64

	// SubsetPruning enables Propositions 5.4–5.6 when enumerating candidate
	// subsets (§5.3); disabling it forces all 2^N−1 optimizations (ablation).
	SubsetPruning bool

	// StackedCSE enables §5.5 stacked covering subexpressions.
	StackedCSE bool

	// MaxCandidates caps the candidate count as a safety valve (0 = default).
	MaxCandidates int

	// MaxCSEOptimizations bounds the number of reoptimizations in the CSE
	// phase. The paper's optimizer likewise gates optimization phases on
	// elapsed time (§2.1); without heuristic pruning the 2^N−1 subset
	// lattice can otherwise dominate. 0 means the default (256).
	MaxCSEOptimizations int

	// MinQueryCost gates the CSE phase: queries cheaper than this skip it
	// (the paper enters the phase "only if the query is expensive").
	MinQueryCost float64

	// ChargeAtRoot (ablation) charges every candidate's initial cost at the
	// batch root instead of the consumers' common dominator (§5.2).
	ChargeAtRoot bool

	// NoHistoryReuse (ablation) disables §5.4 optimization-history reuse
	// across CSE reoptimizations.
	NoHistoryReuse bool

	// SearchStrategy selects how the §5.3 cost-based selection searches the
	// candidate subset lattice: SearchAuto (default) enumerates exhaustively
	// up to maxLatticeCandidates candidates and uses the greedy local search
	// beyond; SearchLattice and SearchGreedy force one strategy.
	SearchStrategy SearchStrategy

	// ExtendedSubsetPruning enables a sound strengthening of Proposition
	// 5.6 (an extension beyond the paper): after optimizing with S enabled
	// and observing the winner used S* ⊆ S, every set between S* and S is
	// redundant — opt(S) explored a superset of opt(S')'s plans and its
	// winner is feasible for any S' ⊇ S*, so it is optimal for all of them.
	ExtendedSubsetPruning bool
}

// DefaultSettings returns the paper's configuration.
func DefaultSettings() Settings {
	return Settings{
		EnableCSE:           true,
		Heuristics:          true,
		Alpha:               0.10,
		Beta:                0.90,
		SubsetPruning:       true,
		StackedCSE:          true,
		SearchStrategy:      SearchAuto,
		MaxCandidates:       64,
		MaxCSEOptimizations: 256,
	}
}

// Stats reports what the CSE phase did — the quantities the paper's tables
// record.
type Stats struct {
	// SignatureSets is the number of signatures referenced by two or more
	// expressions (detection hits).
	SignatureSets int

	// Candidates is the number of candidate CSEs given to the optimizer
	// (the paper's "# of CSEs").
	Candidates int

	// CandidateLabels describes each candidate.
	CandidateLabels []string

	// CSEOptimizations is the number of reoptimizations performed in the
	// CSE phase (the paper's bracketed "[CSE Opts]").
	CSEOptimizations int

	// SearchStrategy is the subset-search strategy the phase actually ran
	// ("lattice" or "greedy") after resolving Settings.SearchStrategy against
	// the candidate count; empty when the phase never reached the search.
	SearchStrategy string

	// BaseCost is the estimated cost of the best plan found by normal
	// optimization (C_Q); FinalCost is the chosen plan's estimated cost.
	BaseCost  float64
	FinalCost float64

	// UsedCSEs lists the candidate IDs the final plan actually uses.
	UsedCSEs []int

	// PrunedH1..PrunedH4 count the §4.3 heuristic prune decisions: signature
	// sets / compatibility classes rejected by Heuristic 1, consumers dropped
	// by Heuristic 2, trivial specs discarded by Algorithm 1's Δ-benefit test
	// (Heuristic 3), and contained candidates discarded by Heuristic 4. They
	// are always counted (no tracing required) so the metrics registry can
	// report them cheaply.
	PrunedH1 int
	PrunedH2 int
	PrunedH3 int
	PrunedH4 int
}

// Output bundles everything the engine and harnesses need.
type Output struct {
	Result     *opt.Result
	Base       *opt.Result
	Stats      Stats
	Candidates []*opt.Candidate
	Optimizer  *opt.Optimizer

	// Trace holds the structured optimizer trace when one was requested via
	// OptimizeTraced; nil otherwise.
	Trace *obs.Trace
}

// Optimize runs normal optimization followed, when enabled and worthwhile,
// by the CSE phase: signature-based detection, candidate generation with
// heuristic pruning, and cost-based selection over candidate subsets. The
// returned plan is the cheapest found; it may use no CSEs at all.
func Optimize(m *memo.Memo, settings Settings) (*Output, error) {
	return OptimizeTraced(m, settings, nil)
}

// OptimizeTraced is Optimize with a structured decision trace: when tr is
// non-nil, every signature-match, heuristic prune (with the cost bounds and
// α/β/Δ thresholds that triggered it), Algorithm 1 merge, charge-group
// assignment, and subset reoptimization is recorded on it. A nil tr disables
// all trace hooks, keeping the untraced path free of overhead.
func OptimizeTraced(m *memo.Memo, settings Settings, tr *obs.Trace) (*Output, error) {
	return OptimizeObserved(m, settings, tr, nil)
}

// OptimizeObserved is OptimizeTraced with span tracing: when span is non-nil,
// the optimizer's phases — base optimization, signature/candidate formation
// (with the H1–H4 prune counts as attributes), and the §5.3 subset
// reoptimization — are recorded as child spans. A nil span disables all span
// hooks; trace and span tracing are independent.
func OptimizeObserved(m *memo.Memo, settings Settings, tr *obs.Trace, span *obs.Span) (*Output, error) {
	o := opt.NewOptimizer(m)
	baseSpan := span.Child("optimize-base")
	base, err := o.OptimizeBase()
	if err != nil {
		baseSpan.End()
		return nil, err
	}
	baseSpan.SetAttr("base_cost", base.Cost)
	baseSpan.End()
	out := &Output{Result: base, Base: base, Optimizer: o, Trace: tr}
	out.Stats.BaseCost = base.Cost
	out.Stats.FinalCost = base.Cost
	base.MarkFusion()
	if !settings.EnableCSE || base.Cost < settings.MinQueryCost {
		return out, nil
	}

	candSpan := span.Child("candidates")
	gen := &generator{m: m, o: o, set: settings, cq: base.Cost, stats: &out.Stats, trace: tr}
	specs, err := gen.generate()
	if err != nil {
		candSpan.End()
		return nil, err
	}
	if len(specs) == 0 {
		candSpan.SetAttr("candidates", 0)
		candSpan.End()
		return out, nil
	}
	cands, err := gen.finalize(specs)
	if err != nil {
		candSpan.End()
		return nil, err
	}
	if settings.StackedCSE {
		addStackedConsumers(m, specs, cands)
	}
	out.Candidates = cands
	out.Stats.Candidates = len(cands)
	for _, c := range cands {
		out.Stats.CandidateLabels = append(out.Stats.CandidateLabels, c.Label)
	}
	candSpan.SetAttr("signature_sets", out.Stats.SignatureSets)
	candSpan.SetAttr("candidates", len(cands))
	candSpan.SetAttr("pruned_h1", out.Stats.PrunedH1)
	candSpan.SetAttr("pruned_h2", out.Stats.PrunedH2)
	candSpan.SetAttr("pruned_h3", out.Stats.PrunedH3)
	candSpan.SetAttr("pruned_h4", out.Stats.PrunedH4)
	candSpan.End()

	maxOpts := settings.MaxCSEOptimizations
	if maxOpts <= 0 {
		maxOpts = 256
	}
	o.ChargeAtRoot = settings.ChargeAtRoot
	o.NoHistoryReuse = settings.NoHistoryReuse
	o.PrepareCSE(cands)
	if tr != nil {
		for _, c := range cands {
			tr.Add(obs.Event{
				Kind:   obs.EvCharge,
				Label:  fmt.Sprintf("CSE%d: %s", c.ID, c.Label),
				Groups: []int{int(c.ChargeGroup)},
				Reason: "initial cost charged at the consumers' common dominator",
			})
		}
	}
	strategy := resolveSearchStrategy(settings.SearchStrategy, len(cands))
	out.Stats.SearchStrategy = string(strategy)
	subsetSpan := span.Child("subset-reoptimization")
	subsetSpan.SetAttr("strategy", string(strategy))
	best, used, nOpts, err := optimizeSubsets(o, m, cands, subsetOpts{
		pruning:  settings.SubsetPruning,
		extended: settings.ExtendedSubsetPruning,
		maxOpts:  maxOpts,
		strategy: strategy,
		baseCost: base.Cost,
		trace:    tr,
		span:     subsetSpan,
	})
	if err != nil {
		subsetSpan.End()
		return nil, err
	}
	subsetSpan.SetAttr("reoptimizations", nOpts)
	out.Stats.CSEOptimizations = nOpts
	if best != nil && best.Cost < base.Cost {
		best.MarkFusion()
		out.Result = best
		out.Stats.FinalCost = best.Cost
		out.Stats.UsedCSEs = used
	}
	subsetSpan.SetAttr("final_cost", out.Stats.FinalCost)
	subsetSpan.SetAttr("used_cses", len(out.Stats.UsedCSEs))
	subsetSpan.End()
	if tr != nil {
		tr.Add(obs.Event{
			Kind: obs.EvFinal,
			Used: append([]int(nil), out.Stats.UsedCSEs...),
			Values: map[string]float64{
				"base_cost":  out.Stats.BaseCost,
				"final_cost": out.Stats.FinalCost,
			},
		})
	}
	// The CSE phase caches per-group plan alternatives for history reuse;
	// the chosen plan no longer needs them.
	o.ReleaseCaches()
	return out, nil
}

// Describe renders the CSE phase's decisions for inspection and debugging:
// per candidate, its covering expression, consumers, charge group, and
// whether the final plan uses it.
func (out *Output) Describe(m *memo.Memo) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "normal optimization cost: %.2f\n", out.Stats.BaseCost)
	if len(out.Candidates) == 0 {
		sb.WriteString("no candidate covering subexpressions\n")
		return sb.String()
	}
	used := make(map[int]bool, len(out.Stats.UsedCSEs))
	for _, id := range out.Stats.UsedCSEs {
		used[id] = true
	}
	fmt.Fprintf(&sb, "candidates: %d, reoptimizations: %d, final cost: %.2f\n",
		out.Stats.Candidates, out.Stats.CSEOptimizations, out.Stats.FinalCost)
	for _, c := range out.Candidates {
		marker := " "
		if used[c.ID] {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%s E%d: %s\n", marker, c.ID+1, c.Label)
		fmt.Fprintf(&sb, "    rows=%.0f bytes=%.0f grouped=%v stacked=%v charge=G%d\n",
			c.Rows, c.Bytes, c.Grouped, c.StackUsed, c.ChargeGroup)
		fmt.Fprintf(&sb, "    consumers:")
		for _, g := range c.Consumers {
			fmt.Fprintf(&sb, " G%d(stmt %d)", g, m.Group(g).StmtIdx)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("(* = used in the final plan)\n")
	return sb.String()
}
