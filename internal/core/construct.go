// Package core implements the paper's contribution: detection of potentially
// sharable SPJG subexpressions through table signatures, join-compatibility
// analysis, construction of covering subexpressions (CSEs), the greedy
// candidate-generation algorithm with its four cost-based pruning heuristics
// (§4), stacked CSEs (§5.5), and the cost-based optimization over candidate
// subsets with Propositions 5.4–5.6 (§5.3).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/scalar"
)

// baseKey identifies a column independently of table instance: base table
// name (lower case) plus column ordinal. CSE construction aligns columns of
// different consumers through base keys.
type baseKey struct {
	table string
	ord   int
}

// colMapper translates between a consumer's column space and the candidate's
// canonical column space (the first consumer's).
type colMapper struct {
	md *logical.Metadata
	// relByTable maps a base table name to the consumer's instance.
	relByTable map[string]*logical.RelInfo
}

func newColMapper(md *logical.Metadata, g *memo.Group) (*colMapper, error) {
	cm := &colMapper{md: md, relByTable: make(map[string]*logical.RelInfo)}
	for rid := 0; rid < md.NumRels(); rid++ {
		if !g.Rels.Contains(logical.RelID(rid)) {
			continue
		}
		rel := md.Rel(logical.RelID(rid))
		name := strings.ToLower(rel.Tab.Name)
		if _, dup := cm.relByTable[name]; dup {
			return nil, fmt.Errorf("self-join on %q cannot be covered", name)
		}
		cm.relByTable[name] = rel
	}
	return cm, nil
}

// baseOf returns the base key of a column; ok is false for synthesized
// columns.
func (cm *colMapper) baseOf(c scalar.ColID) (baseKey, bool) {
	t, ord, ok := cm.md.BaseCol(c)
	if !ok {
		return baseKey{}, false
	}
	return baseKey{table: strings.ToLower(t), ord: ord}, true
}

// colFor returns this space's column for a base key.
func (cm *colMapper) colFor(k baseKey) (scalar.ColID, bool) {
	rel, ok := cm.relByTable[k.table]
	if !ok {
		return 0, false
	}
	return rel.ColID(k.ord), true
}

// translate rewrites an expression from the src space into the dst space,
// column by column via base keys. Synthesized columns cannot be translated.
func translate(e *scalar.Expr, src, dst *colMapper) (*scalar.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if e.Op == scalar.OpCol {
		k, ok := src.baseOf(e.Col)
		if !ok {
			return nil, fmt.Errorf("column @%d is synthesized and cannot be translated", e.Col)
		}
		to, ok := dst.colFor(k)
		if !ok {
			return nil, fmt.Errorf("no instance of table %q in target space", k.table)
		}
		return scalar.Col(to), nil
	}
	if len(e.Args) == 0 {
		return e, nil
	}
	args := make([]*scalar.Expr, len(e.Args))
	for i, a := range e.Args {
		na, err := translate(a, src, dst)
		if err != nil {
			return nil, err
		}
		args[i] = na
	}
	out := *e
	out.Args = args
	return &out, nil
}

// baseEquiv maintains equivalence classes over base keys (§4.1).
type baseEquiv struct {
	parent map[baseKey]baseKey
}

func newBaseEquiv() *baseEquiv { return &baseEquiv{parent: make(map[baseKey]baseKey)} }

func (be *baseEquiv) find(k baseKey) baseKey {
	p, ok := be.parent[k]
	if !ok {
		be.parent[k] = k
		return k
	}
	if p == k {
		return k
	}
	root := be.find(p)
	be.parent[k] = root
	return root
}

func (be *baseEquiv) add(a, b baseKey) {
	ra, rb := be.find(a), be.find(b)
	if ra != rb {
		be.parent[rb] = ra
	}
}

func (be *baseEquiv) equal(a, b baseKey) bool {
	if a == b {
		return true
	}
	if _, ok := be.parent[a]; !ok {
		return false
	}
	if _, ok := be.parent[b]; !ok {
		return false
	}
	return be.find(a) == be.find(b)
}

// classes returns classes with two or more members, deterministically sorted.
func (be *baseEquiv) classes() [][]baseKey {
	byRoot := make(map[baseKey][]baseKey)
	keys := make([]baseKey, 0, len(be.parent))
	for k := range be.parent {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessBase(keys[i], keys[j]) })
	for _, k := range keys {
		r := be.find(k)
		byRoot[r] = append(byRoot[r], k)
	}
	var out [][]baseKey
	for _, class := range byRoot {
		if len(class) >= 2 {
			out = append(out, class)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessBase(out[i][0], out[j][0]) })
	return out
}

func lessBase(a, b baseKey) bool {
	if a.table != b.table {
		return a.table < b.table
	}
	return a.ord < b.ord
}

// equivOf extracts the base-space equivalence classes induced by a group's
// column-equality conjuncts.
func equivOf(md *logical.Metadata, g *memo.Group) *baseEquiv {
	cm := colMapperOrNil(md, g)
	be := newBaseEquiv()
	if cm == nil {
		return be
	}
	for _, c := range g.Conjuncts {
		if a, b, ok := c.IsColEqCol(); ok {
			ka, okA := cm.baseOf(a)
			kb, okB := cm.baseOf(b)
			if okA && okB {
				be.add(ka, kb)
			}
		}
	}
	return be
}

func colMapperOrNil(md *logical.Metadata, g *memo.Group) *colMapper {
	cm, err := newColMapper(md, g)
	if err != nil {
		return nil
	}
	return cm
}

// intersectEquiv intersects two base-space class collections in the natural
// way (§4.1).
func intersectEquiv(a, b *baseEquiv) *baseEquiv {
	out := newBaseEquiv()
	for _, ca := range a.classes() {
		inA := make(map[baseKey]bool, len(ca))
		for _, k := range ca {
			inA[k] = true
		}
		for _, cb := range b.classes() {
			var common []baseKey
			for _, k := range cb {
				if inA[k] {
					common = append(common, k)
				}
			}
			for i := 1; i < len(common); i++ {
				out.add(common[0], common[i])
			}
		}
	}
	return out
}

// connectedOver reports whether the equijoin graph induced by the classes is
// connected over the given tables (Definition 4.1).
func (be *baseEquiv) connectedOver(tables []string) bool {
	if len(tables) <= 1 {
		return true
	}
	idx := make(map[string]int, len(tables))
	for i, t := range tables {
		idx[t] = i
	}
	parent := make([]int, len(tables))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, class := range be.classes() {
		first := -1
		for _, k := range class {
			ti, ok := idx[k.table]
			if !ok {
				continue
			}
			if first < 0 {
				first = ti
				continue
			}
			ra, rb := find(first), find(ti)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	root := find(0)
	for i := 1; i < len(tables); i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// subsetOfEquiv reports whether every equality of a holds in b.
func subsetOfEquiv(a, b *baseEquiv) bool {
	for _, class := range a.classes() {
		for i := 1; i < len(class); i++ {
			if !b.equal(class[0], class[i]) {
				return false
			}
		}
	}
	return true
}
