package tpch

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func generate(t testing.TB, cfg Config) (*catalog.Catalog, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	for _, tab := range Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := Generate(cfg, cat, st); err != nil {
		t.Fatal(err)
	}
	return cat, st
}

func TestSchemasComplete(t *testing.T) {
	names := map[string]bool{}
	for _, tab := range Schemas() {
		names[tab.Name] = true
	}
	for _, want := range []string{"region", "nation", "customer", "orders", "lineitem", "part", "supplier", "partsupp"} {
		if !names[want] {
			t.Errorf("missing table %s", want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{ScaleFactor: 0.002, Seed: 99}
	_, st1 := generate(t, cfg)
	_, st2 := generate(t, cfg)
	for _, name := range []string{"customer", "orders", "lineitem"} {
		t1, _ := st1.Table(name)
		t2, _ := st2.Table(name)
		if t1.Len() != t2.Len() {
			t.Fatalf("%s row counts differ: %d vs %d", name, t1.Len(), t2.Len())
		}
		for i := range t1.Rows {
			if sqltypes.CompareRows(t1.Rows[i], t2.Rows[i]) != 0 {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	_, st1 := generate(t, Config{ScaleFactor: 0.002, Seed: 1})
	_, st2 := generate(t, Config{ScaleFactor: 0.002, Seed: 2})
	t1, _ := st1.Table("customer")
	t2, _ := st2.Table("customer")
	same := true
	for i := range t1.Rows {
		if sqltypes.CompareRows(t1.Rows[i], t2.Rows[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different data")
	}
}

func TestScaling(t *testing.T) {
	_, small := generate(t, Config{ScaleFactor: 0.002, Seed: 1})
	_, big := generate(t, Config{ScaleFactor: 0.004, Seed: 1})
	s, _ := small.Table("orders")
	b, _ := big.Table("orders")
	if b.Len() != 2*s.Len() {
		t.Errorf("orders: %d at 2x scale vs %d, want exact doubling", b.Len(), s.Len())
	}
	// Fixed-size tables don't scale.
	rs, _ := small.Table("region")
	rb, _ := big.Table("region")
	if rs.Len() != 5 || rb.Len() != 5 {
		t.Error("region always has 5 rows")
	}
	ns, _ := small.Table("nation")
	if ns.Len() != 25 {
		t.Error("nation always has 25 rows")
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	cat, st := generate(t, Config{ScaleFactor: 0.002, Seed: 5})
	_ = cat

	orders, _ := st.Table("orders")
	customers, _ := st.Table("customer")
	lineitems, _ := st.Table("lineitem")
	nations, _ := st.Table("nation")

	// Every o_custkey references an existing customer.
	nCust := int64(customers.Len())
	orderKeys := make(map[int64]bool, orders.Len())
	for _, r := range orders.Rows {
		if ck := r[1].Int(); ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %d out of range", ck)
		}
		orderKeys[r[0].Int()] = true
	}
	// Every l_orderkey references an existing order.
	for _, r := range lineitems.Rows {
		if !orderKeys[r[0].Int()] {
			t.Fatalf("l_orderkey %d has no order", r[0].Int())
		}
	}
	// Every c_nationkey is a valid nation.
	for _, r := range customers.Rows {
		if nk := r[3].Int(); nk < 0 || nk >= int64(nations.Len()) {
			t.Fatalf("c_nationkey %d out of range", nk)
		}
	}
	// Every nation points at a valid region.
	for _, r := range nations.Rows {
		if rk := r[2].Int(); rk < 0 || rk >= 5 {
			t.Fatalf("n_regionkey %d out of range", rk)
		}
	}
}

func TestDateRanges(t *testing.T) {
	_, st := generate(t, Config{ScaleFactor: 0.002, Seed: 5})
	lo := sqltypes.MustParseDate("1992-01-01").Days()
	hi := sqltypes.MustParseDate("1998-12-31").Days()
	orders, _ := st.Table("orders")
	for _, r := range orders.Rows {
		if d := r[4].Days(); d < lo || d > hi {
			t.Fatalf("o_orderdate %v out of TPC-H range", r[4])
		}
	}
	lineitems, _ := st.Table("lineitem")
	for i, r := range lineitems.Rows {
		if i > 2000 {
			break
		}
		if d := r[9].Days(); d < lo {
			t.Fatalf("l_shipdate %v before epoch", r[9])
		}
	}
}

func TestStatisticsInstalled(t *testing.T) {
	cat, _ := generate(t, Config{ScaleFactor: 0.002, Seed: 5})
	for _, name := range []string{"customer", "orders", "lineitem"} {
		tab, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Stats.RowCount <= 0 {
			t.Errorf("%s has no row count", name)
		}
		if len(tab.Stats.Cols) != len(tab.Cols) {
			t.Errorf("%s has %d column stats for %d columns", name, len(tab.Stats.Cols), len(tab.Cols))
		}
		if tab.AvgRowSize <= 0 {
			t.Errorf("%s has no row size", name)
		}
	}
	// Selectivity-critical stats: c_nationkey distinct ≈ 25.
	cust, _ := cat.Table("customer")
	nk := cust.Stats.Cols[3]
	if nk.Distinct < 10 || nk.Distinct > 25 {
		t.Errorf("c_nationkey distinct = %g, want ≈25", nk.Distinct)
	}
}

func TestDefaultScaleFactorFallback(t *testing.T) {
	cat := catalog.New()
	for _, tab := range Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := Generate(Config{Seed: 1}, cat, st); err != nil {
		t.Fatal(err)
	}
	c, _ := st.Table("customer")
	if c.Len() == 0 {
		t.Error("zero scale factor must fall back to the default")
	}
}

func TestMktSegmentDomain(t *testing.T) {
	_, st := generate(t, Config{ScaleFactor: 0.002, Seed: 5})
	valid := map[string]bool{"AUTOMOBILE": true, "BUILDING": true, "FURNITURE": true, "MACHINERY": true, "HOUSEHOLD": true}
	cust, _ := st.Table("customer")
	for _, r := range cust.Rows {
		if !valid[r[6].Str()] {
			t.Fatalf("invalid segment %q", r[6].Str())
		}
	}
}
