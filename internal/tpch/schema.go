// Package tpch generates a deterministic, TPC-H-shaped database. It stands
// in for the 1GB (SF=1) TPC-H database used in the paper's experiments; the
// scale factor is configurable so tests stay fast while benchmarks use
// larger volumes. The schema follows TPC-H with one documented deviation:
// part carries a p_availqty column so the paper's §6.2 query Q4 runs
// verbatim (TPC-H proper puts availqty on partsupp).
package tpch

import (
	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// Base row counts at scale factor 1.0, matching TPC-H.
const (
	baseCustomer = 150_000
	baseOrders   = 1_500_000
	basePart     = 200_000
	baseSupplier = 10_000
	basePartSupp = 800_000
	numNations   = 25
	numRegions   = 5
)

func col(name string, kind sqltypes.Kind) catalog.Column {
	return catalog.Column{Name: name, Type: kind}
}

// Schemas returns catalog definitions for the eight TPC-H tables (without
// statistics; those are computed from generated data). Each table except
// partsupp is generated in primary-key order, recorded in OrderedBy so the
// optimizer can elide sorts over base scans.
func Schemas() []*catalog.Table {
	i, f, s, d := sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString, sqltypes.KindDate
	return []*catalog.Table{
		{Name: "region", OrderedBy: []int{0}, Cols: []catalog.Column{
			col("r_regionkey", i), col("r_name", s), col("r_comment", s),
		}},
		{Name: "nation", OrderedBy: []int{0}, Cols: []catalog.Column{
			col("n_nationkey", i), col("n_name", s), col("n_regionkey", i), col("n_comment", s),
		}},
		{Name: "customer", OrderedBy: []int{0}, Cols: []catalog.Column{
			col("c_custkey", i), col("c_name", s), col("c_address", s), col("c_nationkey", i),
			col("c_phone", s), col("c_acctbal", f), col("c_mktsegment", s), col("c_comment", s),
		}},
		{Name: "orders", OrderedBy: []int{0}, Indexes: []catalog.Index{{Col: 4}}, Cols: []catalog.Column{
			col("o_orderkey", i), col("o_custkey", i), col("o_orderstatus", s), col("o_totalprice", f),
			col("o_orderdate", d), col("o_orderpriority", s), col("o_clerk", s), col("o_shippriority", i),
		}},
		{Name: "lineitem", OrderedBy: []int{0, 3}, Indexes: []catalog.Index{{Col: 9}}, Cols: []catalog.Column{
			col("l_orderkey", i), col("l_partkey", i), col("l_suppkey", i), col("l_linenumber", i),
			col("l_quantity", f), col("l_extendedprice", f), col("l_discount", f), col("l_tax", f),
			col("l_returnflag", s), col("l_shipdate", d), col("l_shipmode", s),
		}},
		{Name: "part", OrderedBy: []int{0}, Cols: []catalog.Column{
			col("p_partkey", i), col("p_name", s), col("p_mfgr", s), col("p_brand", s),
			col("p_type", s), col("p_size", i), col("p_retailprice", f), col("p_availqty", i),
		}},
		{Name: "supplier", OrderedBy: []int{0}, Cols: []catalog.Column{
			col("s_suppkey", i), col("s_name", s), col("s_nationkey", i), col("s_acctbal", f),
		}},
		{Name: "partsupp", Cols: []catalog.Column{
			col("ps_partkey", i), col("ps_suppkey", i), col("ps_availqty", i), col("ps_supplycost", f),
		}},
	}
}
