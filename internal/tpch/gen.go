package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales row counts relative to TPC-H SF=1 (1GB). Tests use
	// ~0.005, benchmarks 0.05–0.2.
	ScaleFactor float64
	// Seed makes generation deterministic; the same (ScaleFactor, Seed)
	// always produces identical data.
	Seed int64
}

// DefaultConfig is a small, test-friendly scale.
var DefaultConfig = Config{ScaleFactor: 0.005, Seed: 1}

var (
	segments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	shipModes = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	nameParts = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon"}
	typeSyl1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	statuses   = []string{"O", "F", "P"}
	flags      = []string{"A", "N", "R"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations    = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM",
		"RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
)

// epochDay converts a TPC-H style date to days since 1970-01-01.
func mustDay(s string) int64 { return sqltypes.MustParseDate(s).Days() }

// Generate builds all eight tables into the store and installs fresh
// statistics on the catalog. The catalog must already contain the Schemas().
func Generate(cfg Config, cat *catalog.Catalog, st *storage.Store) error {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = DefaultConfig.ScaleFactor
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nCust := scaled(baseCustomer, cfg.ScaleFactor)
	nOrders := scaled(baseOrders, cfg.ScaleFactor)
	nPart := scaled(basePart, cfg.ScaleFactor)
	nSupp := scaled(baseSupplier, cfg.ScaleFactor)
	nPartSupp := scaled(basePartSupp, cfg.ScaleFactor)

	dateLo := mustDay("1992-01-01")
	dateHi := mustDay("1998-08-02")

	// region
	rt := st.Create("region")
	for i := 0; i < numRegions; i++ {
		rt.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(regions[i]),
			sqltypes.NewString("comment " + regions[i]),
		})
	}

	// nation
	nt := st.Create("nation")
	for i := 0; i < numNations; i++ {
		nt.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(nations[i]),
			sqltypes.NewInt(int64(i % numRegions)),
			sqltypes.NewString("comment " + nations[i]),
		})
	}

	// customer
	ct := st.Create("customer")
	for i := 1; i <= nCust; i++ {
		ct.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", i)),
			sqltypes.NewString(randText(rng, 2)),
			sqltypes.NewInt(int64(rng.Intn(numNations))),
			sqltypes.NewString(randPhone(rng)),
			sqltypes.NewFloat(round2(rng.Float64()*11000 - 1000)),
			sqltypes.NewString(segments[rng.Intn(len(segments))]),
			sqltypes.NewString(randText(rng, 4)),
		})
	}

	// orders + lineitem
	ot := st.Create("orders")
	lt := st.Create("lineitem")
	lineNo := 0
	for i := 1; i <= nOrders; i++ {
		custkey := int64(rng.Intn(nCust) + 1)
		orderDate := dateLo + int64(rng.Intn(int(dateHi-dateLo-121)))
		nLines := 1 + rng.Intn(7)
		var total float64
		for ln := 1; ln <= nLines; ln++ {
			qty := float64(1 + rng.Intn(50))
			price := round2(qty * (900 + rng.Float64()*1200))
			disc := round2(rng.Float64() * 0.1)
			tax := round2(rng.Float64() * 0.08)
			total += price * (1 - disc) * (1 + tax)
			lt.Append(sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(rng.Intn(max(nPart, 1)) + 1)),
				sqltypes.NewInt(int64(rng.Intn(max(nSupp, 1)) + 1)),
				sqltypes.NewInt(int64(ln)),
				sqltypes.NewFloat(qty),
				sqltypes.NewFloat(price),
				sqltypes.NewFloat(disc),
				sqltypes.NewFloat(tax),
				sqltypes.NewString(flags[rng.Intn(len(flags))]),
				sqltypes.NewDate(orderDate + int64(1+rng.Intn(121))),
				sqltypes.NewString(shipModes[rng.Intn(len(shipModes))]),
			})
			lineNo++
		}
		ot.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(custkey),
			sqltypes.NewString(statuses[rng.Intn(len(statuses))]),
			sqltypes.NewFloat(round2(total)),
			sqltypes.NewDate(orderDate),
			sqltypes.NewString(priorities[rng.Intn(len(priorities))]),
			sqltypes.NewString(fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1)),
			sqltypes.NewInt(0),
		})
	}

	// part
	pt := st.Create("part")
	for i := 1; i <= nPart; i++ {
		pt.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(randName(rng)),
			sqltypes.NewString(fmt.Sprintf("Manufacturer#%d", rng.Intn(5)+1)),
			sqltypes.NewString(fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)),
			sqltypes.NewString(randType(rng)),
			sqltypes.NewInt(int64(rng.Intn(50) + 1)),
			sqltypes.NewFloat(round2(900 + rng.Float64()*1200)),
			sqltypes.NewInt(int64(rng.Intn(9999) + 1)),
		})
	}

	// supplier
	supt := st.Create("supplier")
	for i := 1; i <= nSupp; i++ {
		supt.Append(sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%09d", i)),
			sqltypes.NewInt(int64(rng.Intn(numNations))),
			sqltypes.NewFloat(round2(rng.Float64()*11000 - 1000)),
		})
	}

	// partsupp
	pst := st.Create("partsupp")
	for i := 0; i < nPartSupp; i++ {
		pst.Append(sqltypes.Row{
			sqltypes.NewInt(int64(rng.Intn(max(nPart, 1)) + 1)),
			sqltypes.NewInt(int64(rng.Intn(max(nSupp, 1)) + 1)),
			sqltypes.NewInt(int64(rng.Intn(9999) + 1)),
			sqltypes.NewFloat(round2(rng.Float64() * 1000)),
		})
	}

	// Install statistics.
	for _, name := range []string{"region", "nation", "customer", "orders", "lineitem", "part", "supplier", "partsupp"} {
		ctab, err := cat.Table(name)
		if err != nil {
			return fmt.Errorf("tpch: %w", err)
		}
		stab, err := st.Table(name)
		if err != nil {
			return fmt.Errorf("tpch: %w", err)
		}
		storage.AnalyzeTable(ctab, stab)
	}
	return nil
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func randPhone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

func randText(rng *rand.Rand, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += nameParts[rng.Intn(len(nameParts))]
	}
	return out
}

func randName(rng *rand.Rand) string { return randText(rng, 3) }

func randType(rng *rand.Rand) string {
	return typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " + typeSyl3[rng.Intn(len(typeSyl3))]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
