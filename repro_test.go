package repro_test

// A fast end-to-end reproduction gate at the repository root: the headline
// result (Table 1's Example 1 batch) must show sharing with the expected
// structure even at a tiny scale. The full evaluation lives in
// cmd/csebench and the benchmarks below.

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestReproductionSmoke(t *testing.T) {
	cfg := bench.Config{ScaleFactor: 0.005, Seed: 42, Reps: 1}
	tr, err := bench.RunTable(cfg, "smoke", bench.Table1SQL())
	if err != nil {
		t.Fatal(err)
	}
	with := tr.Runs[bench.WithCSE]
	noH := tr.Runs[bench.NoHeuristics]

	if with.Candidates != 1 || with.CSEOpts != 1 {
		t.Errorf("heuristic candidates/opts = %d/%d, want 1/1", with.Candidates, with.CSEOpts)
	}
	if noH.Candidates != 5 {
		t.Errorf("no-heuristics candidates = %d, want Figure 6's 5", noH.Candidates)
	}
	if with.EstCost >= tr.Runs[bench.NoCSE].EstCost {
		t.Errorf("sharing must reduce estimated cost: %.2f vs %.2f",
			with.EstCost, tr.Runs[bench.NoCSE].EstCost)
	}
	if with.EstCost != noH.EstCost {
		t.Errorf("pruning must not change plan quality: %.2f vs %.2f", with.EstCost, noH.EstCost)
	}
	if len(with.UsedCSEs) != 1 {
		t.Errorf("used CSEs = %v, want the single covering aggregate", with.UsedCSEs)
	}
	label := with.Labels[with.UsedCSEs[0]]
	if !strings.HasPrefix(label, "γ(customer ⋈ lineitem ⋈ orders)") {
		t.Errorf("winning candidate = %q, want the paper's E5", label)
	}
}
